"""Profile-guided planning passes: the deciding half of repro.opt.

:func:`build_plan` turns the analyses :func:`repro.core.analyze_image`
produced for one image into a :class:`~repro.opt.rewrite.RewritePlan`:

* **layout** -- Pettis-Hansen style chaining: merge basic blocks along
  their hottest CFG edges so the frequent path becomes straight-line
  fallthrough code (taken branches become not-taken; unconditional
  branches on the hot path disappear);
* **schedule** -- list scheduling inside each block against the
  machine's own dual-issue/latency rules (via
  :func:`repro.core.schedule.schedule_block`, the *same* model the
  analysis charged static stalls with), so reported static stalls are
  actually removed rather than estimated away;
* **split** -- hot/cold splitting: never-executed blocks move to the
  tail of their procedure, and whole procedures are reordered hottest
  first, packing the hot working set onto fewer I-cache pages (the
  direct-mapped L1I maps different code pages onto the same lines, so
  fewer hot pages means deterministically fewer conflict misses).

Safety rails: a procedure is *frozen* (kept byte-identical, modulo the
image-level move) whenever its CFG has unresolved indirect edges or any
branch in the image targets the middle of one of its blocks -- the plan
only rearranges code it can prove it fully understands.  Everything
else is the rewriter's job (:mod:`repro.opt.rewrite`), including
refusing plans whose fingerprint no longer matches.
"""

from repro.alpha.opcodes import (CONTROL_KINDS, DIRECT_BRANCH_KINDS,
                                 ISSUE_CLASSES)
from repro.core.cfg import EXIT
from repro.core.schedule import schedule_block
from repro.cpu.issue import PAIR_OK, result_latency
from repro.obs import NULL_OBS
from repro.opt.rewrite import (BlockPlan, ProcPlan, RewritePlan,
                               image_fingerprint)


class OptConfig:
    """Which passes run, and their thresholds."""

    __slots__ = ("layout", "schedule", "split", "cold_count")

    def __init__(self, layout=True, schedule=True, split=True,
                 cold_count=0.5):
        self.layout = layout
        self.schedule = schedule
        self.split = split
        #: blocks executed at most this often count as cold.
        self.cold_count = cold_count


def _chain_blocks(cfg, freq):
    """Pettis-Hansen bottom-up chaining; returns a block-index order.

    Edges are visited hottest first; an edge merges two chains when its
    source ends one chain and its destination starts another, making
    the edge a fallthrough.  The entry block's chain is emitted first
    (the rewriter needs the procedure to begin at its entry), remaining
    chains hottest first.
    """
    weights = {}
    for edge in cfg.edges:
        if edge.dst == EXIT or edge.dst == edge.src:
            continue
        count = freq.edge_count(edge.index)
        if count > 0:
            key = (edge.src, edge.dst)
            weights[key] = weights.get(key, 0.0) + count
    chain_of = list(range(len(cfg.blocks)))
    chains = {index: [index] for index in chain_of}
    ordered = sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))
    for (src, dst), _count in ordered:
        head, tail = chain_of[src], chain_of[dst]
        if head == tail:
            continue
        if chains[head][-1] != src or chains[tail][0] != dst:
            continue
        chains[head].extend(chains[tail])
        for member in chains[tail]:
            chain_of[member] = head
        del chains[tail]

    def heat(chain):
        return max(freq.block_count(member) for member in chains[chain])

    entry_chain = chain_of[cfg.entry]
    rest = sorted((chain for chain in chains if chain != entry_chain),
                  key=lambda chain: (-heat(chain), chain))
    order = list(chains[entry_chain])
    for chain in rest:
        order.extend(chains[chain])
    return order


def _split_cold(order, freq, cold_count):
    """Stable-partition *order* so cold blocks sink to the tail."""
    entry, rest = order[0], order[1:]
    hot = [b for b in rest if freq.block_count(b) > cold_count]
    cold = [b for b in rest if freq.block_count(b) <= cold_count]
    return [entry] + hot + cold


# Opcodes that must keep their exact position inside a block: calls and
# anything whose side effects the scheduler does not model.
_BARRIER_OPS = ("jsr", "bsr", "call_pal")


class _Shim:
    """Duck-typed block for re-running the static scheduler."""

    __slots__ = ("instructions",)

    def __init__(self, instructions):
        self.instructions = instructions


#: Dynamic-stall culprit reasons caused by the *producer* of a value
#: (a load that missed): the stall charged at the consumer moves with
#: the producer's result latency.
_PRODUCER_REASONS = ("dcache", "dtb")


def _observed_stalls(analysis, block):
    """Profile-observed extra result latency, per producer address.

    The analysis charges dynamic stalls at the stalled *consumer* and
    names the producing load as the culprit (``from 0x...``).  For
    scheduling, that observation means the producer's effective result
    latency is its static latency plus those stall cycles -- the
    knowledge that separates profile-guided scheduling from static
    scheduling (a compiler assumes loads hit; the profile knows which
    ones do not).
    """
    extra = {}
    if analysis is None:
        return extra
    for inst in block.instructions:
        row = analysis.by_addr.get(inst.addr)
        if row is None or row.dyn_per_exec <= 0.0:
            continue
        sources = {c.source_addr for c in row.culprits
                   if c.source_addr and c.reason in _PRODUCER_REASONS}
        for addr in sources:
            extra[addr] = max(extra.get(addr, 0.0), row.dyn_per_exec)
    return extra


def _effective_cycles(instructions, extra):
    """Issue-model cycles for one instruction order, with observed
    stalls folded in.

    Mirrors :func:`repro.core.schedule.schedule_block` (same pairing
    predicate, same latencies, same IMUL/FDIV interlocks) except that a
    producer listed in *extra* delivers its result that many cycles
    later -- the profile's measurement of its cache behavior.  With an
    empty *extra* this reproduces ``best_case_cycles`` exactly.
    """
    reg_ready = {}
    prev_issue = -1
    pair_open = False
    prev_cls = None
    imul_free = 0
    fdiv_free = 0
    for inst in instructions:
        cls_name = inst.info.cls
        icls = ISSUE_CLASSES[cls_name]
        rdy = 0
        for src in inst.srcs:
            ready = reg_ready.get(src, 0)
            if ready > rdy:
                rdy = ready
        res = 0
        if cls_name == "IMUL" and imul_free > 0:
            res = imul_free
        elif cls_name == "FDIV" and fdiv_free > 0:
            res = fdiv_free
        if (pair_open and rdy <= prev_issue and res <= prev_issue
                and PAIR_OK[(prev_cls, cls_name)]):
            issue = prev_issue
            pair_open = False
        else:
            issue = max(prev_issue + 1, rdy, res)
            pair_open = True
        if (inst.info.kind in CONTROL_KINDS
                and inst is instructions[-1]):
            pair_open = False
        prev_issue = issue
        prev_cls = cls_name
        if inst.dst is not None:
            reg_ready[inst.dst] = (issue + icls.latency
                                   + extra.get(inst.addr, 0.0))
        if cls_name == "IMUL":
            imul_free = issue + icls.busy
        elif cls_name == "FDIV":
            fdiv_free = issue + icls.busy
    return prev_issue + 1


def _schedule_block_order(block, extra):
    """List-schedule *block*; return a better instruction order or None.

    Builds a dependence DAG (register RAW with the machine's result
    latencies plus the profile-observed stalls in *extra*, WAR/WAW,
    conservative memory ordering: stores are ordered against every
    earlier memory op, loads against the last store) and greedily emits
    the ready instruction with the longest critical path.  A candidate
    is accepted only if it scores strictly faster under the
    stall-weighted issue model AND no worse under the machine's own
    static scheduler -- hoisting a missing load must never cost
    best-case cycles.
    """
    insts = block.instructions
    if len(insts) < 3:
        return None
    last = insts[-1]
    pinned_term = (last.info.kind in CONTROL_KINDS
                   and last.op not in ("jsr",))
    body = insts[:-1] if pinned_term else list(insts)
    if len(body) < 2:
        return None

    count = len(body)
    preds = [0] * count
    succs = [[] for _ in range(count)]
    crit = [dict() for _ in range(count)]   # i -> {succ: latency}
    last_def = {}
    readers = {}
    last_store = None
    loads_after_store = []
    barrier = None
    for i, inst in enumerate(body):
        deps = {}
        if barrier is not None:
            deps[barrier] = 0
        is_barrier = (inst.op in _BARRIER_OPS
                      or inst.info.kind in CONTROL_KINDS)
        if is_barrier:
            for j in range(i):
                deps[j] = 0
        for src in inst.srcs:
            producer = last_def.get(src)
            if producer is not None:
                lat = (result_latency(body[producer].op)
                       + extra.get(body[producer].addr, 0.0))
                deps[producer] = max(deps.get(producer, 0), lat)
        if inst.dst is not None:
            for reader in readers.get(inst.dst, ()):
                if reader != i:
                    deps.setdefault(reader, 0)
            previous = last_def.get(inst.dst)
            if previous is not None:
                deps.setdefault(previous, 0)
        if inst.is_store:
            if last_store is not None:
                deps.setdefault(last_store, 0)
            for load in loads_after_store:
                deps.setdefault(load, 0)
        elif inst.is_load and last_store is not None:
            deps.setdefault(last_store, 0)
        for j, lat in deps.items():
            crit[j][i] = max(crit[j].get(i, 0), lat)
        if is_barrier:
            barrier = i
        for src in inst.srcs:
            readers.setdefault(src, []).append(i)
        if inst.dst is not None:
            last_def[inst.dst] = i
            readers[inst.dst] = []
        if inst.is_store:
            last_store = i
            loads_after_store = []
        elif inst.is_load:
            loads_after_store.append(i)

    for i in range(count):
        for j in crit[i]:
            preds[j] += 1
            succs[i].append(j)

    # Critical-path heights, computed in reverse (edges go forward).
    height = [1] * count
    for i in range(count - 1, -1, -1):
        for j, lat in crit[i].items():
            height[i] = max(height[i], height[j] + max(1, lat))

    ready = [i for i in range(count) if preds[i] == 0]
    emitted = []
    while ready:
        ready.sort(key=lambda i: (-height[i], i))
        pick = ready.pop(0)
        emitted.append(pick)
        for j in succs[pick]:
            preds[j] -= 1
            if preds[j] == 0:
                ready.append(j)
    if len(emitted) != count:        # cycle: should not happen
        return None
    if emitted == list(range(count)):
        return None
    candidate = [body[i] for i in emitted]
    if pinned_term:
        candidate.append(last)
    original = list(block.instructions)
    if _effective_cycles(candidate, extra) \
            >= _effective_cycles(original, extra):
        return None
    if schedule_block(_Shim(candidate)).best_case_cycles \
            > schedule_block(block).best_case_cycles:
        return None
    return candidate


def build_plan(image, analyses, config=None, obs=None):
    """Plan one image's rewrite from its per-procedure analyses.

    *image* is the **linked** image that was profiled; *analyses* the
    mapping :func:`repro.core.analyze.analyze_image` returned for it.
    Returns a :class:`RewritePlan` in image-relative coordinates,
    applicable to any instruction-identical rebuild of the image.
    """
    config = config or OptConfig()
    obs = obs or NULL_OBS
    base = image.base or 0

    # Any direct branch into the middle of a block freezes its
    # procedure: moving that block would leave the branch pointing at
    # the wrong instruction sequence.
    branch_targets = [
        inst.target for inst in image.instructions
        if inst.info.kind in DIRECT_BRANCH_KINDS
        and inst.target is not None
    ]

    stats = {"blocks_moved": 0, "scheduled_blocks": 0, "procs_moved": 0,
             "frozen_procs": 0, "cold_blocks_demoted": 0}
    entries = []
    for proc in image.procedures:
        analysis = analyses.get(proc.name)
        frozen = analysis is None
        cfg = analysis.cfg if analysis is not None else None
        if not frozen and cfg.missing_edges:
            frozen = True
        if not frozen:
            starts = {block.start for block in cfg.blocks}
            for target in branch_targets:
                if proc.start <= target < proc.end \
                        and target not in starts:
                    frozen = True
                    break
        if frozen:
            if analysis is not None:
                stats["frozen_procs"] += 1
            block = BlockPlan(proc.start - base, proc.end - base)
            entries.append((proc, analysis,
                            ProcPlan(proc.name, [block], frozen=True)))
            continue

        order = list(range(len(cfg.blocks)))
        if config.layout:
            order = _chain_blocks(cfg, analysis.freq)
        if config.split:
            split = _split_cold(order, analysis.freq, config.cold_count)
            stats["cold_blocks_demoted"] += sum(
                1 for a, b in zip(order, split) if a != b and
                analysis.freq.block_count(b) <= config.cold_count)
            order = split
        for position, index in enumerate(order):
            original_next = index + 1 if index + 1 < len(cfg.blocks) \
                else None
            new_next = (order[position + 1]
                        if position + 1 < len(order) else None)
            if original_next != new_next:
                stats["blocks_moved"] += 1

        blocks = []
        for index in order:
            block = cfg.blocks[index]
            plan = BlockPlan(block.start - base, block.end - base)
            if config.schedule:
                candidate = _schedule_block_order(
                    block, _observed_stalls(analysis, block))
                if candidate is not None:
                    plan.order = [inst.addr - base for inst in candidate]
                    stats["scheduled_blocks"] += 1
            blocks.append(plan)
        entries.append((proc, analysis, ProcPlan(proc.name, blocks)))

    # Image-level procedure reordering (split pass): entry procedure
    # stays first; the rest go hottest first so the hot working set
    # packs onto the fewest I-cache pages.
    if config.split and len(entries) > 1:
        def proc_heat(entry):
            analysis = entry[1]
            return analysis.total_samples if analysis is not None else 0

        head, tail = entries[0], entries[1:]
        reordered = sorted(
            range(len(tail)),
            key=lambda i: (-proc_heat(tail[i]), i))
        stats["procs_moved"] = sum(
            1 for position, i in enumerate(reordered) if position != i)
        entries = [head] + [tail[i] for i in reordered]

    data_offset = None
    if image.data_base is not None:
        data_offset = image.data_base - base
    plan = RewritePlan(
        image.name, image_fingerprint(image),
        [entry[2] for entry in entries], data_offset, stats=stats)
    obs.counter("opt.plans_built").inc()
    obs.counter("opt.blocks_moved").inc(stats["blocks_moved"])
    obs.counter("opt.blocks_scheduled").inc(stats["scheduled_blocks"])
    obs.counter("opt.procs_moved").inc(stats["procs_moved"])
    return plan
