"""repro.opt: profile-guided optimization driven by DCPI profiles.

The paper's closing argument is that continuous profiles are accurate
enough to *act on*.  This package is the acting: it consumes the
analysis tools' per-instruction frequency/CPI/culprit output and
rewrites workload images -- basic-block layout (Pettis-Hansen
chaining), in-block list scheduling against the machine's own
dual-issue rules, and hot/cold splitting -- then re-runs the workload
to measure the speedup that was actually realized, under two
correctness gates: a static translation validator
(:mod:`repro.check.transval`, Layer 4) that proves each plan
semantics-preserving before anything runs, and a dynamic A/B oracle
that rejects any rewrite whose architectural results differ.  A
decidable disagreement between the two raises
:class:`~repro.opt.optimizer.TransvalDisagreement` -- the verifiers
cross-check each other.

See :mod:`repro.opt.passes` (deciding), :mod:`repro.opt.rewrite`
(doing), :mod:`repro.opt.oracle` (proving) and
:mod:`repro.opt.optimizer` (orchestrating); ``dcpiopt`` is the CLI.
"""

from repro.opt.optimizer import (OptReport, TransvalDisagreement,
                                 optimize_workload, pass_contributions,
                                 sweep_workload)
from repro.opt.oracle import OracleReport, verify_identity
from repro.opt.passes import OptConfig, build_plan
from repro.opt.rewrite import (BlockPlan, ImageRewriter, ProcPlan,
                               RewritePlan, RewriteResult,
                               image_fingerprint, rewrite_image)

__all__ = [
    "BlockPlan",
    "ImageRewriter",
    "OptConfig",
    "OptReport",
    "OracleReport",
    "ProcPlan",
    "RewritePlan",
    "RewriteResult",
    "TransvalDisagreement",
    "build_plan",
    "image_fingerprint",
    "optimize_workload",
    "pass_contributions",
    "rewrite_image",
    "sweep_workload",
    "verify_identity",
]
