"""Profile -> plan -> validate -> rewrite -> verify -> measure.

:func:`optimize_workload` closes the paper's loop: the workload runs
under the DCPI collection system, the analysis explains where the
cycles went, the planning passes turn those explanations into a
rewrite, and two plain A/B runs measure the *realized* speedup while
the oracle (:mod:`repro.opt.oracle`) and the Layer-1 image checker
(:mod:`repro.check`) prove the rewritten program is still the same
program.

Acceptance has two gates, cheapest first (ISSUE 10):

1. **static** -- :mod:`repro.check.transval` proves each plan
   semantics-preserving without running anything.  A static rejection
   skips the dynamic oracle entirely and reports the per-block
   counterexamples;
2. **dynamic** -- the A/B oracle run.  Because the static gate already
   vouched for every plan, a *decidable* dynamic mismatch after a
   static accept means one of the two verifiers is wrong -- that is
   never a rejection to report, it is a bug to fix, so it raises
   :class:`TransvalDisagreement`.

A result is only reported as an optimization when all gates hold:
static acceptance, architectural identity, zero new non-INFO findings,
and the plan actually applied.

:func:`sweep_workload` repeats the whole loop across sampling periods
and injected collection-loss rates -- the experiment behind the
paper's "how good do the profiles have to be?" question: realized
speedup as a function of profile quality.
"""

import random
from collections import Counter
from typing import (TYPE_CHECKING, Any, Dict, Iterable, List, Optional,
                    Sequence, Tuple, Union)

from repro.check.findings import INFO, Finding
from repro.check.image_checks import check_image
from repro.collect.database import ImageProfile
from repro.collect.session import ProfileSession, SessionConfig
from repro.core.analyze import AnalysisConfig, analyze_image
from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType
from repro.obs import NULL_OBS
from repro.opt.oracle import OracleReport, event_total, verify_identity
from repro.opt.passes import OptConfig, build_plan
from repro.opt.rewrite import RewritePlan
from repro.workloads import get_workload

if TYPE_CHECKING:
    from repro.check.transval import TransvalReport


class TransvalDisagreement(RuntimeError):
    """Static validator accepted; dynamic oracle decidably rejected.

    The two verifiers cross-check each other: the static proof says
    the rewritten program *must* behave identically, so a decidable
    A/B divergence means one of them is wrong.  That is a bug in this
    repository, never a property of the workload -- hence an
    exception, not a rejected report.
    """


class OptReport:
    """Everything one optimize run produced (JSON-ready via report())."""

    def __init__(self, workload_name: str, plans: List[RewritePlan],
                 oracle: Optional[OracleReport],
                 findings: Dict[str, List[Finding]],
                 profile_stats: Dict[str, Any],
                 pass_stats: Dict[str, int],
                 static: Optional[Dict[str, "TransvalReport"]] = None
                 ) -> None:
        self.workload_name = workload_name
        self.plans = plans
        #: None when the static gate rejected (no dynamic run happened).
        self.oracle = oracle
        #: {image name: [non-INFO Finding, ...]} on rewritten images.
        self.findings = findings
        self.profile_stats = profile_stats
        self.pass_stats = pass_stats
        #: {image name: TransvalReport} from the static gate.
        self.static = static or {}

    @property
    def static_ok(self) -> bool:
        """True when no plan was statically rejected."""
        return all(report.ok for report in self.static.values())

    @property
    def accepted(self) -> bool:
        """True when the rewrite is proven safe to ship."""
        return (self.static_ok
                and self.oracle is not None
                and self.oracle.identical
                and not any(self.findings.values()))

    @property
    def speedup(self) -> float:
        """Realized fractional cycle reduction (0.0 when rejected)."""
        if not self.accepted or self.oracle is None:
            return 0.0
        return self.oracle.speedup

    def report(self) -> Dict[str, Any]:
        """Plain-dict summary (the dcpiopt report schema, version 2)."""
        oracle = self.oracle
        if oracle is not None:
            baseline = oracle.baseline_machine
            optimized = oracle.optimized_machine
            base_insts = sum(p.instructions for p in baseline.processes)
            opt_insts = sum(p.instructions for p in optimized.processes)
            baseline_block = {
                "cycles": oracle.baseline_cycles,
                "instructions": base_insts,
                "cpi": (oracle.baseline_cycles / base_insts
                        if base_insts else 0.0),
                "imiss": event_total(baseline, EventType.IMISS),
            }
            optimized_block = {
                "cycles": oracle.optimized_cycles,
                "instructions": opt_insts,
                "cpi": (oracle.optimized_cycles / opt_insts
                        if opt_insts else 0.0),
                "imiss": event_total(optimized, EventType.IMISS),
            }
            identical = oracle.identical
            mismatches = list(oracle.mismatches)
            skipped = list(oracle.skipped)
        else:
            zero = {"cycles": 0, "instructions": 0, "cpi": 0.0,
                    "imiss": 0}
            baseline_block = dict(zero)
            optimized_block = dict(zero)
            identical = False
            mismatches = []
            skipped = []
        return {
            "schema": 2,
            "workload": self.workload_name,
            "accepted": self.accepted,
            "static_ok": self.static_ok,
            "static": {name: report.to_dict()
                       for name, report in sorted(self.static.items())},
            "identical": identical,
            "mismatches": mismatches,
            "skipped": skipped,
            "check_findings": {
                name: [str(f) for f in rows]
                for name, rows in self.findings.items() if rows
            },
            "baseline": baseline_block,
            "optimized": optimized_block,
            "speedup": self.speedup,
            "passes": dict(self.pass_stats),
            "profile": dict(self.profile_stats),
        }


def _finding_key(finding: Finding) -> Tuple[str, str, str]:
    # Instruction offsets shift when code moves, and reordering changes
    # *which* instruction first exhibits a pre-existing property (e.g.
    # which of several reads of a never-written register comes first),
    # so findings are budgeted by rule, severity and scope (location
    # minus the +0x offset): the rewrite must not increase any scope's
    # finding count.
    scope = ":".join(part for part in finding.location.split(":")
                     if not part.startswith("+"))
    return (finding.rule, finding.severity, scope)


def _new_findings(before: Sequence[Finding],
                  after: Sequence[Finding]) -> List[Finding]:
    """Non-INFO findings in *after* beyond *before*'s per-scope budget.

    The optimizer's contract is that it introduces no findings; it is
    not required to fix findings the input image always had (those
    belong to the workload's author).
    """
    budget = Counter(_finding_key(f) for f in before
                     if f.severity != INFO)
    fresh = []
    for finding in after:
        if finding.severity == INFO:
            continue
        key = _finding_key(finding)
        if budget[key] > 0:
            budget[key] -= 1
        else:
            fresh.append(finding)
    return fresh


def _subsample_profile(profile: ImageProfile, loss: float,
                       seed: int) -> ImageProfile:
    """Simulate collection loss: drop each sample with probability *loss*.

    Deterministic in (*seed*, image name, event, offset) so sweeps are
    reproducible; edge samples are thinned the same way.
    """
    if loss <= 0.0:
        return profile
    rng = random.Random("%d:%s" % (seed, profile.image.name))
    thinned = ImageProfile(profile.image, periods=dict(profile.periods))
    for event, by_offset in profile.counts.items():
        for offset in sorted(by_offset):
            count = by_offset[offset]
            kept = sum(1 for _ in range(count) if rng.random() >= loss)
            if kept:
                thinned.add(event, offset, kept)
    for key in sorted(profile.edge_counts):
        count = profile.edge_counts[key]
        kept = sum(1 for _ in range(count) if rng.random() >= loss)
        if kept:
            thinned.add_edge(key[0], key[1], kept)
    return thinned


def optimize_workload(workload: Any, mode: str = "cycles",
                      seed: int = 1, max_instructions: int = 200_000,
                      cycles_period: Tuple[int, int] = (240, 256),
                      opt_config: Optional[OptConfig] = None,
                      machine_config: Optional[MachineConfig] = None,
                      loss: float = 0.0,
                      verify_instructions: Optional[int] = None,
                      obs: Any = None) -> OptReport:
    """Run the full profile-guided loop on *workload*.

    *workload* is a registry name or a Workload object; *loss* injects
    the given sample-loss fraction into the collected profiles before
    analysis (sweep support).  *max_instructions* caps the profiling
    run only; the oracle's A/B runs go to completion by default
    (*verify_instructions* = None) because architectural identity is
    only decidable on finished programs.  Returns an
    :class:`OptReport`; raises :class:`TransvalDisagreement` if the
    static and dynamic verifiers decidably contradict each other.
    """
    # Imported lazily: repro.check.transval imports repro.opt.rewrite,
    # so a module-level import here would make repro.check.__init__ hit
    # this module mid-initialization of transval itself.
    from repro.check.transval import validate_workload_plans

    obs = obs or NULL_OBS
    if isinstance(workload, str):
        workload = get_workload(workload)
    machine_config = machine_config or MachineConfig()
    opt_config = opt_config or OptConfig()

    with obs.span("opt.profile", workload=workload.name):
        session = ProfileSession(
            machine_config,
            SessionConfig(mode=mode, seed=seed,
                          cycles_period=cycles_period))
        collected = session.run(workload,
                                max_instructions=max_instructions)

    plans: List[RewritePlan] = []
    pass_stats: Dict[str, int] = {}
    analyzed_samples = 0
    with obs.span("opt.plan", workload=workload.name):
        for image in collected.machine.loader.images:
            profile = collected.profiles.get(image.name)
            if profile is None or not profile.total(EventType.CYCLES):
                continue
            profile = _subsample_profile(profile, loss, seed)
            if not profile.total(EventType.CYCLES):
                continue
            analyses = analyze_image(image, profile, AnalysisConfig())
            if not analyses:
                continue
            analyzed_samples += sum(a.total_samples
                                    for a in analyses.values())
            plan = build_plan(image, analyses, opt_config, obs=obs)
            plans.append(plan)
            for key, value in plan.stats.items():
                pass_stats[key] = pass_stats.get(key, 0) + value

    profile_stats: Dict[str, Any] = {
        "mode": mode,
        "seed": seed,
        "cycles_period": list(cycles_period),
        "max_instructions": max_instructions,
        "loss": loss,
        "samples": analyzed_samples,
        "profiled_cycles": collected.cycles,
    }

    # Gate 1: static translation validation (never runs anything).
    with obs.span("opt.transval", workload=workload.name):
        static = validate_workload_plans(
            workload, plans, machine_config=machine_config, seed=seed)
    statically_rejected = [name for name, rep in sorted(static.items())
                           if not rep.ok]
    if statically_rejected:
        for name in statically_rejected:
            obs.counter("opt.transval_rejected").inc()
        obs.counter("opt.runs").inc()
        obs.counter("opt.runs_rejected").inc()
        obs.gauge("opt.last_speedup").set(0.0)
        return OptReport(workload.name, plans, None, {},
                         profile_stats, pass_stats, static=static)

    # Gate 2: the dynamic A/B oracle.
    with obs.span("opt.verify", workload=workload.name):
        oracle = verify_identity(workload, plans,
                                 machine_config=machine_config,
                                 seed=seed,
                                 max_instructions=verify_instructions,
                                 obs=obs)

    # Cross-check: the static gate vouched for every plan, so any
    # *decidable* dynamic divergence is a verifier bug, not a result.
    # (Truncated verify runs are undecidable, which is a rejection but
    # not a contradiction.)
    decidable = [m for m in oracle.mismatches if "undecidable" not in m]
    if decidable:
        raise TransvalDisagreement(
            "static validator accepted every plan for %r but the "
            "dynamic oracle found: %s"
            % (workload.name, "; ".join(decidable[:5])))

    findings: Dict[str, List[Finding]] = {}
    baseline_images = {image.name: image
                       for image in oracle.baseline_machine.loader.images}
    for name, result in oracle.rewriter.results.items():
        if not result.applied:
            continue
        for image in oracle.optimized_machine.loader.images:
            if image.name == name:
                original = baseline_images.get(name)
                before = (check_image(original)
                          if original is not None else [])
                findings[name] = _new_findings(before, check_image(image))
                break

    report = OptReport(workload.name, plans, oracle, findings,
                       profile_stats, pass_stats, static=static)
    obs.counter("opt.runs").inc()
    if report.accepted:
        obs.counter("opt.runs_accepted").inc()
    else:
        obs.counter("opt.runs_rejected").inc()
    obs.gauge("opt.last_speedup").set(report.speedup)
    return report


#: The per-pass configurations `contributions` measures in isolation.
_SINGLE_PASS = (
    ("layout", OptConfig(layout=True, schedule=False, split=False)),
    ("schedule", OptConfig(layout=False, schedule=True, split=False)),
    ("split", OptConfig(layout=False, schedule=False, split=True)),
)


def pass_contributions(workload: Any, **kwargs: Any) -> Dict[str, float]:
    """Measure each pass's speedup in isolation.

    Returns {"layout": speedup, "schedule": ..., "split": ...} -- the
    contribution split the bench schema's ``opt`` block records.  The
    parts need not sum to the combined speedup (passes interact).
    """
    kwargs.pop("opt_config", None)
    out = {}
    for name, config in _SINGLE_PASS:
        report = optimize_workload(workload, opt_config=config, **kwargs)
        out[name] = report.speedup
    return out


def sweep_workload(workload: Any,
                   periods: Iterable[Tuple[int, int]] = (
                       (240, 256), (960, 1024), (3840, 4096)),
                   losses: Iterable[float] = (0.0, 0.1, 0.3),
                   **kwargs: Any) -> List[Dict[str, Any]]:
    """Realized speedup vs profile quality (sampling period x loss).

    Returns a list of rows ``{"period", "loss", "speedup", "accepted",
    "samples"}`` -- the curve the nightly ``opt-full`` job plots: as
    the period grows or collection loses samples, the profile thins and
    the realized speedup degrades gracefully rather than turning into
    wrong code (the validator and oracle guarantee the latter can't
    ship).
    """
    kwargs.pop("cycles_period", None)
    kwargs.pop("loss", None)
    rows = []
    for period in periods:
        for loss in losses:
            report = optimize_workload(workload, cycles_period=period,
                                       loss=loss, **kwargs)
            rows.append({
                "workload": report.workload_name,
                "period": (period[0] + period[1]) / 2.0,
                "loss": loss,
                "speedup": report.speedup,
                "accepted": report.accepted,
                "samples": report.profile_stats["samples"],
            })
    return rows
