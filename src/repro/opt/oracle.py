"""Correctness oracle: a rewritten program must compute the same thing.

The optimizer's contract is that only *performance* changes.  The
oracle enforces it end-to-end: run the workload twice on plain
(unprofiled) machines with the same seed -- once as built, once through
the :class:`~repro.opt.rewrite.ImageRewriter` -- run both to completion
and compare final architectural state per process: exit status, every
integer and floating-point register, and the full memory image.

Code moved, so values that *are* code addresses legitimately differ
(a return address saved by ``bsr``, a procedure address materialized
by ``lda =sym``).  The rewrite's ``old2new`` map plus the return-slot
rule (the word after a call site maps to the word after the original
call site) yields an exact translation; a value matches when it is
equal outright or translates to the baseline value.  Anything else is
a mismatch and the optimization must be rejected.

Data addresses never need translating: the rewriter pins each image's
data region at its original offset, and the loader's base-assignment
sequence is a pure function of image extents -- which the pin keeps
identical -- so every data address is byte-for-byte the same in both
runs (asserted here, not assumed).
"""

from typing import (Any, Callable, Dict, Iterable, List, Optional,
                    Sequence, Tuple)

from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType
from repro.cpu.machine import Machine
from repro.opt.rewrite import ImageRewriter, RewritePlan

#: One process's captured architectural outcome.
ProcState = Dict[str, Any]

#: Calls whose fallthrough slot holds the return address.
_CALL_OPS = ("bsr", "jsr")


class OracleReport:
    """Outcome of one identity check."""

    __slots__ = ("identical", "mismatches", "skipped", "baseline_cycles",
                 "optimized_cycles", "baseline_machine",
                 "optimized_machine", "rewriter")

    def __init__(self, identical: bool, mismatches: List[str],
                 baseline_machine: Machine,
                 optimized_machine: Machine,
                 rewriter: ImageRewriter,
                 skipped: Sequence[str] = ()) -> None:
        self.identical = identical
        self.mismatches = mismatches
        self.skipped = list(skipped)
        self.baseline_machine = baseline_machine
        self.optimized_machine = optimized_machine
        self.rewriter = rewriter
        self.baseline_cycles = baseline_machine.time
        self.optimized_cycles = optimized_machine.time

    @property
    def speedup(self) -> float:
        """Fractional cycle reduction (positive = optimized is faster)."""
        if not self.baseline_cycles:
            return 0.0
        return (self.baseline_cycles - self.optimized_cycles) \
            / self.baseline_cycles


def run_plain(workload: Any,
              machine_config: Optional[MachineConfig] = None,
              seed: int = 1,
              transform: Optional[Callable[..., Any]] = None,
              max_instructions: Optional[int] = None) -> Machine:
    """Run *workload* on an unprofiled machine; return the machine."""
    machine = Machine(machine_config or MachineConfig(), seed=seed)
    if transform is not None:
        machine.image_transform = transform
    setup = getattr(workload, "setup", None)
    if setup is not None:
        setup(machine)
    else:
        workload(machine)
    machine.run(max_instructions=max_instructions)
    return machine


def capture_state(machine: Machine) -> Dict[int, ProcState]:
    """Snapshot each process's architectural outcome."""
    states: Dict[int, ProcState] = {}
    for proc in machine.processes:
        states[proc.pid] = {
            "name": proc.name,
            "exited": proc.exited,
            "iregs": list(proc.iregs),
            "fregs": list(proc.fregs),
            "memory": dict(proc.memory),
        }
    return states


def build_translation(baseline_machine: Machine,
                      optimized_machine: Machine,
                      rewriter: ImageRewriter
                      ) -> Tuple[Dict[int, int], List[str], List[str]]:
    """Map optimized-run code addresses back to baseline addresses.

    Returns ``(translation, problems, skipped)``: every surviving
    instruction's new absolute address maps to its original one; for
    each call site the slot after the (possibly moved) call maps to the
    slot after the original call, because that is the value ``ra``
    receives regardless of which instruction the scheduler placed
    there.  *problems* are correctness-relevant (they fail the oracle);
    *skipped* lists images whose rewrite bailed out -- those ran
    unmodified, so identity holds trivially but no speedup was applied.
    """
    by_name_base = {image.name: image
                    for image in baseline_machine.loader.images}
    translation: Dict[int, int] = {}
    notes: List[str] = []
    skipped: List[str] = []
    for name, result in rewriter.results.items():
        if not result.applied:
            skipped.append("%s: rewrite bailed out (%s)"
                           % (name, result.reason))
            continue
        original = by_name_base.get(name)
        rewritten = None
        for image in optimized_machine.loader.images:
            if image.name == name:
                rewritten = image
                break
        if original is None or rewritten is None:
            notes.append("%s: image missing from a run" % name)
            continue
        if original.base != rewritten.base:
            notes.append(
                "%s: link bases diverged (%#x vs %#x); data addresses "
                "are no longer comparable"
                % (name, original.base, rewritten.base))
            continue
        base = original.base
        for old, new in result.old2new.items():
            translation[base + new] = base + old
        for inst in original.instructions:
            if inst.op in _CALL_OPS:
                old = inst.addr - base
                new = result.old2new.get(old)
                if new is not None:
                    translation[base + new + 4] = base + old + 4
    return translation, notes, skipped


def compare_states(baseline: Dict[int, ProcState],
                   optimized: Dict[int, ProcState],
                   translation: Dict[int, int]) -> List[str]:
    """Diff two :func:`capture_state` snapshots; return mismatch strings.

    A value matches when equal, or when the optimized value is a moved
    code address whose translation equals the baseline value.
    """

    def matches(a: Any, b: Any) -> bool:
        if a == b:
            return True
        if isinstance(b, int) and translation.get(b) == a:
            return True
        return False

    mismatches: List[str] = []
    for pid in sorted(set(baseline) | set(optimized)):
        a = baseline.get(pid)
        b = optimized.get(pid)
        if a is None or b is None:
            mismatches.append("pid %d exists in only one run" % pid)
            continue
        if not a["exited"] and not b["exited"]:
            # A truncated run froze both programs mid-flight at
            # different points of the same computation; their
            # intermediate state is incomparable.  Identity is only
            # decidable on completed runs.
            mismatches.append(
                "pid %d did not run to completion in either run; "
                "identity undecidable (raise the verify budget)" % pid)
            continue
        for key in ("name", "exited"):
            if a[key] != b[key]:
                mismatches.append("pid %d: %s %r != %r"
                                  % (pid, key, a[key], b[key]))
        for index, (va, vb) in enumerate(zip(a["iregs"], b["iregs"])):
            if not matches(va, vb):
                mismatches.append(
                    "pid %d: r%d %#x != %#x (untranslatable)"
                    % (pid, index, va, vb))
        for index, (va, vb) in enumerate(zip(a["fregs"], b["fregs"])):
            if va != vb:
                mismatches.append("pid %d: f%d %r != %r"
                                  % (pid, index, va, vb))
        mem_a, mem_b = a["memory"], b["memory"]
        if set(mem_a) != set(mem_b):
            only_a = sorted(set(mem_a) - set(mem_b))[:4]
            only_b = sorted(set(mem_b) - set(mem_a))[:4]
            mismatches.append(
                "pid %d: memory footprints differ (only-baseline %s, "
                "only-optimized %s)"
                % (pid, [hex(x) for x in only_a],
                   [hex(x) for x in only_b]))
            continue
        for addr in mem_a:
            if not matches(mem_a[addr], mem_b[addr]):
                mismatches.append(
                    "pid %d: mem[%#x] %r != %r (untranslatable)"
                    % (pid, addr, mem_a[addr], mem_b[addr]))
    return mismatches


def verify_identity(workload: Any, plans: Iterable[RewritePlan],
                    machine_config: Optional[MachineConfig] = None,
                    seed: int = 1,
                    max_instructions: Optional[int] = None,
                    obs: Any = None) -> "OracleReport":
    """Run the A/B identity check; return an :class:`OracleReport`.

    Mismatch strings double as the rejection reasons ``dcpiopt``
    prints; an empty list means the rewritten program is
    architecturally indistinguishable from the original.
    """
    baseline = run_plain(workload, machine_config, seed=seed,
                         max_instructions=max_instructions)
    rewriter = ImageRewriter(plans, obs=obs)
    optimized = run_plain(workload, machine_config, seed=seed,
                          transform=rewriter,
                          max_instructions=max_instructions)
    translation, problems, skipped = build_translation(
        baseline, optimized, rewriter)
    mismatches = list(problems)
    mismatches += compare_states(capture_state(baseline),
                                 capture_state(optimized), translation)
    return OracleReport(not mismatches, mismatches, baseline, optimized,
                        rewriter, skipped=skipped)


def event_total(machine: Machine,
                event: EventType = EventType.IMISS) -> int:
    """Sum a ground-truth event count across the whole machine."""
    total = 0
    for row in machine.gt_events.values():
        total += row.get(event, 0)
    return total
