"""Reproduction of the DIGITAL Continuous Profiling Infrastructure (DCPI).

This package reimplements, in Python, the system described in
"Continuous Profiling: Where Have All the Cycles Gone?" (SOSP 1997):

* ``repro.alpha`` -- an Alpha-like ISA: assembler, images, symbol tables.
* ``repro.cpu`` -- a cycle-level in-order dual-issue pipeline simulator
  with caches, TLBs, a write buffer, branch prediction and performance
  counters (the hardware substrate the paper profiled).
* ``repro.osim`` -- processes, address spaces, a loader and a scheduler
  (the operating-system substrate).
* ``repro.collect`` -- the paper's data-collection system: device driver
  with per-CPU hash tables, user-mode daemon, on-disk profile database.
* ``repro.core`` -- the paper's analysis subsystem: CFGs, frequency
  equivalence, the S_i/M_i frequency heuristic, CPI computation, and
  "guilty until proven innocent" culprit analysis.
* ``repro.tools`` -- dcpiprof, dcpicalc, dcpistats and friends.
* ``repro.workloads`` -- synthetic stand-ins for the paper's workloads.
* ``repro.baselines`` -- the competing profilers of the paper's Table 1.

Quickstart::

    from repro import MachineConfig, ProfileSession
    from repro.workloads import mccalpin

    program = mccalpin.build(kernel="copy", n=2000)
    session = ProfileSession(MachineConfig())
    result = session.run(program)
"""

from repro.alpha.assembler import assemble
from repro.alpha.image import Image, Procedure
from repro.collect.database import ProfileDatabase
from repro.collect.session import ProfileSession, SessionConfig
from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType
from repro.cpu.machine import Machine

__all__ = [
    "assemble",
    "Image",
    "Procedure",
    "MachineConfig",
    "EventType",
    "Machine",
    "ProfileSession",
    "SessionConfig",
    "ProfileDatabase",
]

__version__ = "1.0.0"
