"""repro.check: static analysis and invariant verification (dcpicheck).

Four layers (ISSUE 5, Layer 4 in ISSUE 10):

1. **image** -- dataflow + CFG well-formedness + encoding round-trip
   checks over :mod:`repro.alpha` images (:mod:`repro.check.
   image_checks`);
2. **analysis** -- machine-checkable invariants of the paper's analysis
   pipeline: flow conservation, equivalence classes, schedule/slotting
   rules, culprit coverage, merge determinism (:mod:`repro.check.
   analysis_checks`);
3. **lint** -- repo-specific AST lint rules for determinism, pickle
   safety and NULL-object hook discipline (:mod:`repro.check.lint`);
4. **rewrite** -- static translation validation of the profile-guided
   rewriter's plans: symbolic per-block equivalence proofs that never
   execute either image (:mod:`repro.check.transval`).

Entry points: :func:`run_checks` (programmatic) and the ``dcpicheck``
CLI (:mod:`repro.tools.dcpicheck`).
"""

from repro.check.findings import (ERROR, INFO, LAYERS, WARNING,
                                  CheckReport, Finding, Waiver,
                                  load_waivers)
from repro.check.runner import (CheckConfig, plan_workload,
                                run_analysis_layer, run_checks,
                                run_image_layer, run_lint_layer,
                                run_rewrite_layer)
from repro.check.transval import (Counterexample, TransvalReport,
                                  validate_plan, validate_result,
                                  validate_workload_plans)

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "LAYERS",
    "Finding",
    "Waiver",
    "CheckReport",
    "load_waivers",
    "CheckConfig",
    "run_checks",
    "run_image_layer",
    "run_analysis_layer",
    "run_lint_layer",
    "run_rewrite_layer",
    "plan_workload",
    "Counterexample",
    "TransvalReport",
    "validate_plan",
    "validate_result",
    "validate_workload_plans",
]
