"""Layer 4: static translation validation for the rewriter.

:func:`validate_result` proves -- without running either image -- that
a :func:`repro.opt.rewrite.rewrite_image` output preserves the
semantics of its input, by combining three independent arguments:

* a **symbolic evaluator** for Alpha basic blocks.  Each block is
  summarized as a symbolic machine state (register values as
  expression trees over the block's entry state, the ordered stream of
  stores/calls, the terminator) built from the *same* architectural
  semantics tables (:data:`repro.alpha.opcodes.OPCODES`) the cycle
  simulator executes -- there is no second interpreter to drift;
* a **simulation relation** between the original and rewritten CFGs,
  modulo the rewrite's claimed ``old2new`` correspondence plus the
  return-slot rule (the word after a moved call corresponds to the
  word after the original call).  The claim is *verified*, never
  trusted: the regions ``old2new`` describes must tile the rewritten
  image exactly, block for block, and each region's actual
  instructions must produce a symbolic state equal -- modulo code
  address translation -- to the original block's.  Because summaries
  are order-insensitive precisely where reordering is legal (and
  order-sensitive across stores, calls and dependences), the equality
  independently re-proves the scheduler's dependence safety;
* **directed rules** for each rewrite primitive: an inverted
  conditional branch must use the architecturally negated opcode
  (:data:`repro.alpha.opcodes.BRANCH_INVERSES`) with taken/fallthrough
  destinations swapped; an elided ``br`` requires layout fallthrough
  into its target's moved code; a fallthrough stub must be an
  unconditional ``br`` to the moved fallthrough; data must stay pinned
  at the original offset with every data symbol byte-identical.

Calls (``bsr``/``jsr``) segment a block: the full symbolic state is
compared at each call boundary (the callee observes everything), after
which registers and memory are havocked -- both runs invoke the same
callee from equal states, so post-call values are equal-by-name
(``postcall`` leaves) on both sides.

A rejection carries :class:`Counterexample` objects naming the
procedure, the block (original and rewritten offsets) and the
diverging symbolic state, and surfaces as ``rewrite/*`` Findings --
dcpicheck Layer 4 -- as well as the first acceptance gate of
``dcpiopt`` (see :mod:`repro.opt.optimizer`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.alpha import regs
from repro.alpha.image import Image
from repro.alpha.instruction import Instruction
from repro.alpha.opcodes import (BRANCH_INVERSES, CONTROL_KINDS,
                                 DIRECT_BRANCH_KINDS, MASK64, OPCODES)
from repro.check.findings import ERROR, WARNING, Finding

#: Layer-4 rule ids.
R_STRUCTURE = "rewrite/structure"
R_REG = "rewrite/register-state-divergence"
R_MEM = "rewrite/memory-state-divergence"
R_CTRL = "rewrite/control-flow-divergence"
R_CALL = "rewrite/call-boundary-divergence"
R_DATA = "rewrite/data-pinning"
R_FROZEN = "rewrite/frozen-proc-modified"
R_BAILED = "rewrite/plan-not-applicable"

#: A symbolic value: a nested tuple whose head names the node kind --
#: ``("const", v)``, ``("reg", n)`` (entry value), ``("postcall", k,
#: n)`` (value after the k-th call), ``("codeaddr", off)`` (a return
#: slot; compared modulo the translation), ``("sym", name)`` (an
#: unresolved symbol address), ``("load", op, addr, gen)`` (a load at
#: memory generation *gen*), ``("op", name, a, b)``, ``("cmov", name,
#: a, b, old)`` and ``("aligned", a)`` (``& ~3``).
Expr = Tuple[Any, ...]

_ZERO: Expr = ("const", 0)
_FZERO: Expr = ("const", 0.0)

#: Opcodes that are straight-line calls (segment boundaries).
_CALL_OPS = ("bsr", "jsr")


def _const(value: Any) -> Expr:
    return ("const", value)


def _reg_name(reg: int) -> str:
    if reg >= regs.NUM_INT_REGS:
        return "f%d" % (reg - regs.NUM_INT_REGS)
    return "r%d" % reg


def format_expr(expr: Expr) -> str:
    """Render a symbolic value the way counterexamples print it."""
    tag = expr[0]
    if tag == "const":
        value = expr[1]
        if isinstance(value, int):
            return "%#x" % value
        return repr(value)
    if tag == "reg":
        return "%s@entry" % _reg_name(expr[1])
    if tag == "postcall":
        return "%s@call%d" % (_reg_name(expr[2]), expr[1])
    if tag == "codeaddr":
        return "ret@%#x" % expr[1]
    if tag == "sym":
        return "&%s" % expr[1]
    if tag == "load":
        return "%s[%s]@m%d" % (expr[1], format_expr(expr[2]), expr[3])
    if tag == "op":
        return "(%s %s %s)" % (expr[1], format_expr(expr[2]),
                               format_expr(expr[3]))
    if tag == "cmov":
        return "(%s %s ? %s : %s)" % (expr[1], format_expr(expr[2]),
                                      format_expr(expr[3]),
                                      format_expr(expr[4]))
    if tag == "aligned":
        return "(%s & ~3)" % format_expr(expr[1])
    return repr(expr)


def _expr_eq(a: Expr, b: Expr, old2new: Dict[int, int]) -> bool:
    """Structural equality, original vs rewritten side.

    ``codeaddr`` leaves are return slots (``instruction offset + 4``);
    they correspond exactly when the instructions that materialized
    them correspond under ``old2new`` -- the oracle's return-slot rule,
    applied statically.
    """
    if a[0] != b[0] or len(a) != len(b):
        return False
    if a[0] == "codeaddr":
        return old2new.get(a[1] - 4) == b[1] - 4
    for x, y in zip(a[1:], b[1:]):
        if isinstance(x, tuple) and isinstance(y, tuple):
            if not _expr_eq(x, y, old2new):
                return False
        elif x != y:
            return False
    return True


def _fold(op: str, a: Expr, b: Expr) -> Expr:
    """Apply *op*'s architectural semantics; fold constants."""
    sem = OPCODES[op].sem
    if sem is not None and a[0] == "const" and b[0] == "const":
        return ("const", sem(a[1], b[1]))
    return ("op", op, a, b)


def _fold_add(base: Expr, disp: Expr) -> Expr:
    """``(base + disp) & MASK64`` -- lda and effective addresses."""
    if base[0] == "const" and disp[0] == "const":
        return ("const", (base[1] + disp[1]) & MASK64)
    if disp == ("const", 0):
        return base
    return ("op", "lda", base, disp)


def _align(expr: Expr) -> Expr:
    """``& ~3`` -- indirect jump target alignment."""
    if expr[0] == "const":
        return ("const", expr[1] & ~3)
    return ("aligned", expr)


class _SymState:
    """Symbolic registers + effect stream while evaluating one block."""

    __slots__ = ("regs", "frame", "gen", "effects")

    def __init__(self) -> None:
        self.regs: Dict[int, Expr] = {}
        #: calls evaluated so far; names the havoc generation of
        #: unwritten registers (``postcall`` leaves).
        self.frame = 0
        #: memory generation: bumped by every store and every call, so
        #: a load moved across either gets a different tag.
        self.gen = 0
        #: ordered observable effects: ("store", op, addr, value),
        #: ("call", op, target, dst, reg snapshot, frame), ("pal", imm).
        self.effects: List[Tuple[Any, ...]] = []

    def read(self, reg: Optional[int]) -> Expr:
        if reg is None or reg == regs.ZERO_REG:
            return _ZERO
        if reg == regs.FZERO_REG:
            return _FZERO
        value = self.regs.get(reg)
        if value is not None:
            return value
        if self.frame:
            return ("postcall", self.frame, reg)
        return ("reg", reg)

    def write(self, reg: Optional[int], value: Expr) -> None:
        if reg is not None:
            self.regs[reg] = value

    def havoc(self) -> None:
        """Forget everything a callee may have changed."""
        self.regs = {}
        self.frame += 1
        self.gen += 1


def _eval_straightline(state: _SymState, inst: Instruction, off: int,
                       fixups: Dict[int, str]) -> None:
    """Evaluate one non-control instruction into *state*.

    Mirrors the execute stage of :mod:`repro.cpu.pipeline` exactly:
    operate sems over ``(ra, rb-or-literal)``, ``ldah``'s pre-shifted
    displacement, effective addresses ``rb + imm``, loads tagged with
    the current memory generation, stores appended to the effect
    stream.
    """
    kind = inst.info.kind
    op = inst.op
    if kind == "op":
        a = state.read(inst.ra)
        if inst.rb is not None:
            b = state.read(inst.rb)
        else:
            b = _const(inst.imm or 0)
        if inst.info.cls == "CMOV":
            old = state.read(inst.rc)
            cond = inst.info.cond
            if a[0] == "const":
                value = b if cond(a[1]) else old
            else:
                value = ("cmov", op, a, b, old)
        else:
            value = _fold(op, a, b)
        state.write(inst.dst, value)
    elif kind == "fop":
        if op in ("cvtqt", "cvttq"):
            a = _FZERO
        else:
            a = state.read(inst.ra)
        state.write(inst.dst, _fold(op, a, state.read(inst.rb)))
    elif kind == "lda":
        imm = inst.imm or 0
        if op == "ldah":
            imm <<= 16
        base = state.read(inst.rb)
        sym = fixups.get(off)
        disp = ("sym", sym) if sym is not None else _const(imm)
        state.write(inst.dst, _fold_add(base, disp))
    elif kind in ("load", "fload"):
        addr = _fold_add(state.read(inst.rb), _const(inst.imm or 0))
        state.write(inst.dst, ("load", op, addr, state.gen))
    elif kind in ("store", "fstore"):
        addr = _fold_add(state.read(inst.rb), _const(inst.imm or 0))
        state.effects.append(("store", op, addr, state.read(inst.ra)))
        state.gen += 1
    elif kind == "pal":
        # Timing/OS interaction only; position in the stream must
        # still match (it is a scheduling barrier).
        state.effects.append(("pal", inst.imm))
    # kind "nop": no architectural effect.


class _Summary:
    """One block's symbolic outcome."""

    __slots__ = ("state", "term", "interior")

    def __init__(self, state: _SymState,
                 term: Optional[Tuple[Any, ...]],
                 interior: Optional[int]) -> None:
        self.state = state
        #: ("cond", op, src expr, taken offset) | ("br", target) |
        #: ("indirect", op, target expr) | None (plain fallthrough).
        self.term = term
        #: offset of a control instruction that is *not* last (a
        #: malformed region -- blocks may only branch at the end).
        self.interior = interior


def _summarize(items: List[Tuple[int, Instruction]],
               fixups: Dict[int, str]) -> _Summary:
    """Symbolically evaluate *items* ``[(offset, instruction), ...]``.

    Offsets are the instructions' own addresses in their image (they
    parameterize ``codeaddr`` return slots); calls segment the stream
    via :meth:`_SymState.havoc`.
    """
    state = _SymState()
    term: Optional[Tuple[Any, ...]] = None
    interior: Optional[int] = None
    last = len(items) - 1
    for index, (off, inst) in enumerate(items):
        kind = inst.info.kind
        op = inst.op
        if op in _CALL_OPS:
            if inst.dst is not None:
                state.write(inst.dst, ("codeaddr", off + 4))
            if op == "bsr":
                target: Tuple[Any, ...] = ("direct", inst.target)
            else:
                target = ("indirect", _align(state.read(inst.rb)))
            state.effects.append(("call", op, target, inst.dst,
                                  dict(state.regs), state.frame))
            state.havoc()
            continue
        if kind in ("cbranch", "fbranch"):
            this_term: Tuple[Any, ...] = (
                "cond", op, state.read(inst.ra), inst.target)
        elif kind == "br":
            if inst.dst is not None:
                state.write(inst.dst, ("codeaddr", off + 4))
            this_term = ("br", inst.target)
        elif kind == "jump":
            jump_target = _align(state.read(inst.rb))
            if inst.dst is not None:
                state.write(inst.dst, ("codeaddr", off + 4))
            this_term = ("indirect", op, jump_target)
        else:
            _eval_straightline(state, inst, off, fixups)
            continue
        if index != last and interior is None:
            interior = off
        term = this_term
    return _Summary(state, term, interior)


@dataclass(frozen=True)
class Counterexample:
    """Why one block of a rewrite is (claimed) not equivalent."""

    rule: str
    proc: str
    #: original block start offset (image-relative; -1 = image-level).
    block: int
    #: rewritten region start offset (-1 = image-level).
    new_block: int
    message: str
    detail: str = ""

    def location(self, image_name: str) -> str:
        if self.block < 0:
            return "%s:%s" % (image_name, self.proc or "-")
        return "%s:%s:+%#x" % (image_name, self.proc, self.block)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "proc": self.proc,
            "block": self.block,
            "new_block": self.new_block,
            "message": self.message,
            "detail": self.detail,
        }


@dataclass
class TransvalReport:
    """Verdict of one static validation.

    ``accepted`` -- equivalence proven for every block;
    ``rejected``  -- at least one :class:`Counterexample`;
    ``bailed``    -- the rewrite itself refused the plan (the image
    would run unmodified, so there is nothing to validate).
    """

    image_name: str
    verdict: str
    reason: str = ""
    counterexamples: List[Counterexample] = field(default_factory=list)
    procs_checked: int = 0
    blocks_checked: int = 0

    @property
    def ok(self) -> bool:
        return self.verdict != "rejected"

    def to_findings(self) -> List[Finding]:
        """Normalized Layer-4 findings (``rewrite/*`` rules)."""
        if self.verdict == "bailed":
            return [Finding(
                R_BAILED, WARNING, "%s:-" % self.image_name,
                "rewrite bailed out; image runs unmodified",
                self.reason)]
        return [Finding(ce.rule, ERROR, ce.location(self.image_name),
                        ce.message, ce.detail)
                for ce in self.counterexamples]

    def to_dict(self) -> Dict[str, object]:
        return {
            "image": self.image_name,
            "verdict": self.verdict,
            "reason": self.reason,
            "procs_checked": self.procs_checked,
            "blocks_checked": self.blocks_checked,
            "counterexamples": [ce.to_dict()
                                for ce in self.counterexamples],
        }


class _Region:
    """One plan block's verified location in the rewritten image."""

    __slots__ = ("proc", "frozen", "block", "start_new", "emitted",
                 "elided", "stub_at")

    def __init__(self, proc: str, frozen: bool, block: Any,
                 start_new: int, emitted: List[int], elided: bool,
                 stub_at: Optional[int]) -> None:
        self.proc = proc
        self.frozen = frozen
        self.block = block
        self.start_new = start_new
        self.emitted = emitted
        self.elided = elided
        self.stub_at = stub_at


def _layout_regions(original: Image, rewritten: Image, plan: Any,
                    old2new: Dict[int, int],
                    stub_targets: Dict[int, int],
                    ces: List[Counterexample]
                    ) -> Tuple[List[_Region], Dict[int, int]]:
    """Verify that ``old2new`` tiles the rewritten image; map blocks.

    Walks the plan's layout order and checks, block by block, that the
    claimed correspondence is contiguous, that stub slots carry the
    stub claim, and that procedure extents and total code size close
    exactly.  Any structural lie makes further semantic comparison
    meaningless, so callers stop at the first structure finding.
    """
    regions: List[_Region] = []
    new_start: Dict[int, int] = {}
    new_procs = {proc.name: proc for proc in rewritten.procedures}
    cursor = 0
    for proc_plan in plan.procs:
        nproc = new_procs.get(proc_plan.name)
        if nproc is None:
            ces.append(Counterexample(
                R_STRUCTURE, proc_plan.name, -1, -1,
                "procedure missing from the rewritten image"))
            return regions, new_start
        if nproc.start != cursor:
            ces.append(Counterexample(
                R_STRUCTURE, proc_plan.name, -1, cursor,
                "rewritten procedure starts at %#x, layout expects %#x"
                % (nproc.start, cursor)))
            return regions, new_start
        for block in proc_plan.blocks:
            order = block.order
            count = len(order)
            placed = [old2new.get(off) for off in order]
            head = all(placed[i] == cursor + 4 * i
                       for i in range(count - 1))
            full = head and placed[count - 1] == cursor + 4 * (count - 1)
            last_inst = original.instructions[order[-1] >> 2]
            elidable = last_inst.op == "br" and last_inst.dst is None
            if full and elidable:
                # An elided br maps to its target's new start -- which,
                # elision being legal only when the target is the
                # layout successor, is exactly where an emitted copy
                # would sit.  Look at what the rewritten image actually
                # holds there; the semantic pass re-proves either
                # reading, so misclassifying cannot accept a bad image.
                slot = (cursor + 4 * (count - 1)) >> 2
                if (slot >= len(rewritten.instructions)
                        or rewritten.instructions[slot].op != "br"):
                    full = False
            elided = False
            if full:
                emitted = list(order)
            else:
                if (head and elidable
                        and placed[count - 1] is not None):
                    emitted = order[:-1]
                    elided = True
                else:
                    ces.append(Counterexample(
                        R_STRUCTURE, proc_plan.name, block.start,
                        cursor,
                        "old2new does not lay the block out "
                        "contiguously",
                        "claimed positions: %s"
                        % [None if p is None else "%#x" % p
                           for p in placed]))
                    return regions, new_start
            end_new = cursor + 4 * len(emitted)
            stub_at: Optional[int] = None
            if end_new in stub_targets:
                if stub_targets[end_new] != block.end:
                    ces.append(Counterexample(
                        R_STRUCTURE, proc_plan.name, block.start,
                        cursor,
                        "stub at %#x claims target %#x, block falls "
                        "through to %#x"
                        % (end_new, stub_targets[end_new], block.end)))
                    return regions, new_start
                if elided:
                    ces.append(Counterexample(
                        R_STRUCTURE, proc_plan.name, block.start,
                        cursor,
                        "block has both an elided branch and a stub"))
                    return regions, new_start
                stub_at = end_new
            new_start[block.start] = cursor
            regions.append(_Region(proc_plan.name, proc_plan.frozen,
                                   block, cursor, emitted, elided,
                                   stub_at))
            cursor = end_new + (4 if stub_at is not None else 0)
        if nproc.end != cursor:
            ces.append(Counterexample(
                R_STRUCTURE, proc_plan.name, -1, cursor,
                "rewritten procedure ends at %#x, layout expects %#x"
                % (nproc.end, cursor)))
            return regions, new_start
    if cursor != rewritten.code_size:
        ces.append(Counterexample(
            R_STRUCTURE, "", -1, cursor,
            "rewritten image has %d bytes of code the plan does not "
            "claim" % (rewritten.code_size - cursor)))
    return regions, new_start


def _check_data_pinning(original: Image, rewritten: Image, plan: Any,
                        resolve_new: Callable[[int], Optional[int]],
                        ces: List[Counterexample]) -> None:
    """Directed rule: data must not move; symbols must correspond."""
    if rewritten.data_size != original.data_size:
        ces.append(Counterexample(
            R_DATA, "", -1, -1,
            "data size changed: %d != %d bytes"
            % (rewritten.data_size, original.data_size)))
    if rewritten.data_offset != plan.data_offset:
        ces.append(Counterexample(
            R_DATA, "", -1, -1,
            "data offset %r does not honour the plan's pin %r"
            % (rewritten.data_offset, plan.data_offset)))
    if original.data_size and plan.data_offset is None:
        ces.append(Counterexample(
            R_DATA, "", -1, -1,
            "image has %d bytes of data but the plan pins nothing"
            % original.data_size))
    if plan.data_offset is not None:
        # The pin must reproduce the *original* image's placement, not
        # merely be internally consistent: an unpinned link puts data
        # on the next 8 KB page after the code, and loader bases are
        # 64 KB-aligned, so that placement is a pure function of the
        # original extents.  Any other pin moves every pointer into
        # the data region even though the symbol *names* still line up.
        expected_pin = (original.data_offset
                        if original.data_offset is not None
                        else (original.code_size + 8191) & ~8191)
        if plan.data_offset != expected_pin:
            ces.append(Counterexample(
                R_DATA, "", -1, -1,
                "plan pins data at %#x but the original image places "
                "it at %#x; pointers into the data region would change"
                % (plan.data_offset, expected_pin)))
    if (plan.data_offset is not None
            and rewritten.code_size > plan.data_offset):
        ces.append(Counterexample(
            R_DATA, "", -1, -1,
            "rewritten code (%d bytes) overruns the pinned data "
            "offset %#x" % (rewritten.code_size, plan.data_offset)))
    proc_names = {proc.name for proc in original.procedures}
    osyms = dict(original.symbols.items())
    nsyms = dict(rewritten.symbols.items())
    for name in sorted(set(osyms) | set(nsyms)):
        if name not in osyms or name not in nsyms:
            ces.append(Counterexample(
                R_DATA, "", -1, -1,
                "symbol %r exists in only one image" % name))
            continue
        if name in proc_names:
            expected = resolve_new(osyms[name])
            if expected != nsyms[name]:
                ces.append(Counterexample(
                    R_STRUCTURE, name, -1, -1,
                    "procedure symbol %r resolves to %#x, moved code "
                    "is at %r" % (name, nsyms[name], expected)))
        elif osyms[name] != nsyms[name]:
            ces.append(Counterexample(
                R_DATA, "", -1, -1,
                "data symbol %r moved: %#x != %#x"
                % (name, nsyms[name], osyms[name])))


def _has_interior_control(items: List[Tuple[int, Instruction]]) -> bool:
    """True if any non-final instruction transfers control (not a call)."""
    return any(inst.info.kind in CONTROL_KINDS
               and inst.op not in _CALL_OPS
               for _, inst in items[:-1])


def _verbatim_block_ces(original: Image, rewritten: Image,
                        region: _Region,
                        resolve_new: Callable[[int], Optional[int]],
                        orig_fixups: Dict[int, str],
                        new_fixups: Dict[int, str],
                        rule: str) -> List[Counterexample]:
    """Instruction-wise identity, direct branch targets remapped.

    Used where the symbolic summary does not apply: frozen procedures
    (*rule* = ``rewrite/frozen-proc-modified``) and identity-ordered
    plan blocks that span interior control flow (*rule* =
    ``rewrite/control-flow-divergence``).  Same opcode and operands at
    every position, same fixup symbols, every statically-known branch
    target remapped consistently.
    """
    out: List[Counterexample] = []
    block = region.block
    for index, off in enumerate(region.emitted):
        new_off = region.start_new + 4 * index
        oinst = original.instructions[off >> 2]
        ninst = rewritten.instructions[new_off >> 2]
        same = (oinst.op == ninst.op and oinst.ra == ninst.ra
                and oinst.rb == ninst.rb and oinst.rc == ninst.rc
                and oinst.imm == ninst.imm)
        if not same:
            out.append(Counterexample(
                rule, region.proc, block.start, region.start_new,
                "verbatim instruction at +%#x was altered" % off,
                "original %s, rewritten %s" % (oinst.op, ninst.op)))
            continue
        if orig_fixups.get(off) != new_fixups.get(new_off):
            out.append(Counterexample(
                rule, region.proc, block.start, region.start_new,
                "fixup symbol changed at +%#x" % off,
                "%r != %r" % (orig_fixups.get(off),
                              new_fixups.get(new_off))))
        if (oinst.info.kind in DIRECT_BRANCH_KINDS
                and oinst.target is not None):
            expected = resolve_new(oinst.target)
            if ninst.target != expected:
                out.append(Counterexample(
                    rule, region.proc, block.start,
                    region.start_new,
                    "branch at +%#x targets %r, moved code is "
                    "at %r" % (off, ninst.target, expected)))
    return out


def _state_ces(region: _Region, so: _Summary, sn: _Summary,
               old2new: Dict[int, int],
               resolve_new: Callable[[int], Optional[int]]
               ) -> List[Counterexample]:
    """Compare two block summaries: registers, effects (not term)."""
    out: List[Counterexample] = []
    proc, block = region.proc, region.block

    def reg_divergences(rule: str,
                        oregs: Dict[int, Expr], oframe: int,
                        nregs: Dict[int, Expr], nframe: int,
                        where: str) -> None:
        def default(frame: int, reg: int) -> Expr:
            if frame:
                return ("postcall", frame, reg)
            return ("reg", reg)

        for reg in sorted(set(oregs) | set(nregs)):
            a = oregs.get(reg, default(oframe, reg))
            b = nregs.get(reg, default(nframe, reg))
            if not _expr_eq(a, b, old2new):
                out.append(Counterexample(
                    rule, proc, block.start, region.start_new,
                    "register %s diverges %s"
                    % (_reg_name(reg), where),
                    "original %s, rewritten %s"
                    % (format_expr(a), format_expr(b))))

    oeff, neff = so.state.effects, sn.state.effects
    if len(oeff) != len(neff):
        ocalls = sum(1 for e in oeff if e[0] == "call")
        ncalls = sum(1 for e in neff if e[0] == "call")
        rule = R_CALL if ocalls != ncalls else R_MEM
        out.append(Counterexample(
            rule, proc, block.start, region.start_new,
            "effect streams differ: %d stores/%d calls vs %d/%d"
            % (len(oeff) - ocalls, ocalls, len(neff) - ncalls,
               ncalls)))
        return out
    for index, (oe, ne) in enumerate(zip(oeff, neff)):
        if oe[0] != ne[0]:
            out.append(Counterexample(
                R_MEM, proc, block.start, region.start_new,
                "effect #%d diverges: %s vs %s"
                % (index, oe[0], ne[0])))
            continue
        if oe[0] == "store":
            if oe[1] != ne[1]:
                out.append(Counterexample(
                    R_MEM, proc, block.start, region.start_new,
                    "store #%d changed width: %s vs %s"
                    % (index, oe[1], ne[1])))
            if not _expr_eq(oe[2], ne[2], old2new):
                out.append(Counterexample(
                    R_MEM, proc, block.start, region.start_new,
                    "store #%d (%s) address diverges"
                    % (index, oe[1]),
                    "original %s, rewritten %s"
                    % (format_expr(oe[2]), format_expr(ne[2]))))
            if not _expr_eq(oe[3], ne[3], old2new):
                out.append(Counterexample(
                    R_MEM, proc, block.start, region.start_new,
                    "store #%d (%s) value diverges"
                    % (index, oe[1]),
                    "original %s, rewritten %s"
                    % (format_expr(oe[3]), format_expr(ne[3]))))
        elif oe[0] == "call":
            _, oop, otarget, odst, osnap, oframe = oe
            _, nop_, ntarget, ndst, nsnap, nframe = ne
            if oop != nop_ or odst != ndst:
                out.append(Counterexample(
                    R_CALL, proc, block.start, region.start_new,
                    "call #%d changed shape: %s->%s dst %r->%r"
                    % (index, oop, nop_, odst, ndst)))
                continue
            if otarget[0] != ntarget[0]:
                out.append(Counterexample(
                    R_CALL, proc, block.start, region.start_new,
                    "call #%d target kind diverges" % index))
            elif otarget[0] == "direct":
                expected = resolve_new(otarget[1])
                if ntarget[1] != expected:
                    out.append(Counterexample(
                        R_CALL, proc, block.start, region.start_new,
                        "call #%d targets %r, moved callee is at %r"
                        % (index, ntarget[1], expected)))
            elif not _expr_eq(otarget[1], ntarget[1], old2new):
                out.append(Counterexample(
                    R_CALL, proc, block.start, region.start_new,
                    "call #%d indirect target diverges" % index,
                    "original %s, rewritten %s"
                    % (format_expr(otarget[1]),
                       format_expr(ntarget[1]))))
            reg_divergences(R_CALL, osnap, oframe, nsnap, nframe,
                            "at call #%d" % index)
        else:  # pal
            if oe != ne:
                out.append(Counterexample(
                    R_CALL, proc, block.start, region.start_new,
                    "call_pal #%d diverges: %r vs %r"
                    % (index, oe, ne)))
    reg_divergences(R_REG, so.state.regs, so.state.frame,
                    sn.state.regs, sn.state.frame, "at block exit")
    return out


def _term_ces(region: _Region, so: _Summary, sn: _Summary,
              rewritten: Image, old2new: Dict[int, int],
              resolve_new: Callable[[int], Optional[int]]
              ) -> List[Counterexample]:
    """Directed rules for the four terminator rewrites."""
    out: List[Counterexample] = []
    proc, block = region.proc, region.block

    def ce(message: str, detail: str = "") -> None:
        out.append(Counterexample(R_CTRL, proc, block.start,
                                  region.start_new, message, detail))

    fall_new = region.start_new + 4 * len(region.emitted)
    fall_eff: Optional[int] = fall_new
    if region.stub_at is not None:
        stub = rewritten.instructions[region.stub_at >> 2]
        if not (stub.op == "br" and stub.dst is None
                and stub.target is not None):
            ce("stub at %#x is not an unconditional br"
               % region.stub_at)
            return out
        fall_eff = stub.target

    def expect_fall(orig_off: int, what: str) -> None:
        expected = resolve_new(orig_off)
        if expected is None:
            ce("%s continues at +%#x, which has no rewritten location"
               % (what, orig_off))
        elif fall_eff != expected:
            ce("%s reaches %r, moved code is at %#x"
               % (what, fall_eff, expected))

    ot, nt = so.term, sn.term
    if ot is None:
        if nt is not None:
            ce("block gained a terminator: %s" % (nt[0],))
        else:
            expect_fall(block.end, "fallthrough")
    elif ot[0] == "cond":
        _, oop, osrc, otaken = ot
        if region.elided or nt is None or nt[0] != "cond":
            ce("conditional branch disappeared from the block")
            return out
        _, nop_, nsrc, ntaken = nt
        if nop_ == oop:
            taken_from, fall_from = otaken, block.end
        elif BRANCH_INVERSES.get(oop) == nop_:
            taken_from, fall_from = block.end, otaken
        else:
            ce("branch %s became %s, which is neither the same "
               "condition nor its inverse" % (oop, nop_))
            return out
        if not _expr_eq(osrc, nsrc, old2new):
            ce("branch condition operand diverges",
               "original %s, rewritten %s"
               % (format_expr(osrc), format_expr(nsrc)))
        expected = resolve_new(taken_from)
        if ntaken != expected:
            ce("taken edge goes to %r, moved code is at %r"
               % (ntaken, expected))
        save_eff = fall_eff
        if save_eff is None or resolve_new(fall_from) != save_eff:
            ce("fallthrough edge reaches %r, moved code is at %r"
               % (save_eff, resolve_new(fall_from)))
    elif ot[0] == "br":
        _, otarget = ot
        if region.elided:
            expect_fall(otarget, "elided br")
        elif nt is not None and nt[0] == "br":
            expected = resolve_new(otarget)
            if nt[1] != expected:
                ce("br targets %r, moved code is at %r"
                   % (nt[1], expected))
        else:
            ce("unconditional br disappeared without layout "
               "fallthrough")
    else:  # indirect (ret / jmp)
        _, oop, otarget = ot
        if nt is None or nt[0] != "indirect" or nt[1] != oop:
            ce("indirect terminator %s disappeared or changed opcode"
               % oop)
        elif not _expr_eq(otarget, nt[2], old2new):
            ce("indirect jump target diverges",
               "original %s, rewritten %s"
               % (format_expr(otarget), format_expr(nt[2])))
        if region.stub_at is not None:
            ce("%s cannot fall through, yet a stub follows it" % oop)
    return out


def validate_result(original: Image, plan: Any,
                    result: Any) -> TransvalReport:
    """Statically validate one rewrite. Never runs either image.

    *original* is the unlinked input image, *plan* the
    :class:`repro.opt.rewrite.RewritePlan`, *result* the
    :class:`repro.opt.rewrite.RewriteResult` produced from them.
    """
    if not result.applied:
        return TransvalReport(original.name, "bailed",
                              reason=result.reason)
    rewritten = result.image
    old2new: Dict[int, int] = result.old2new
    ces: List[Counterexample] = []
    regions, new_start = _layout_regions(
        original, rewritten, plan, old2new,
        dict(result.stub_targets), ces)
    if ces:
        # The layout claim itself is wrong; per-block semantics would
        # compare instructions at meaningless addresses.
        return TransvalReport(original.name, "rejected",
                              counterexamples=ces)

    def resolve_new(off: int) -> Optional[int]:
        mapped = new_start.get(off)
        if mapped is None:
            mapped = old2new.get(off)
        return mapped

    _check_data_pinning(original, rewritten, plan, resolve_new, ces)

    orig_fixups = {inst.addr: sym for inst, sym in original.fixups}
    new_fixups = {inst.addr: sym for inst, sym in rewritten.fixups}
    blocks = 0
    for region in regions:
        blocks += 1
        block = region.block
        items_o = [(off, original.instructions[off >> 2])
                   for off in range(block.start, block.end, 4)]
        verbatim_rule: Optional[str] = None
        if region.frozen:
            verbatim_rule = R_FROZEN
        elif _has_interior_control(items_o):
            if block.order == list(range(block.start, block.end, 4)):
                # An identity-ordered span over several basic blocks
                # (e.g. a whole-procedure block) is legal but has no
                # single symbolic summary; require a verbatim copy.
                verbatim_rule = R_CTRL
            else:
                ces.append(Counterexample(
                    R_CTRL, region.proc, block.start,
                    region.start_new,
                    "plan reorders across interior control flow; "
                    "only whole basic blocks may be scheduled"))
                continue
        if verbatim_rule is not None:
            ces.extend(_verbatim_block_ces(
                original, rewritten, region, resolve_new,
                orig_fixups, new_fixups, verbatim_rule))
            fall_new = region.start_new + 4 * len(region.emitted)
            if region.elided:
                last = original.instructions[block.order[-1] >> 2]
                if (last.target is None
                        or resolve_new(last.target) != fall_new):
                    ces.append(Counterexample(
                        R_CTRL, region.proc, block.start,
                        region.start_new,
                        "elided br fallthrough reaches %#x, moved "
                        "target is at %r"
                        % (fall_new, None if last.target is None
                           else resolve_new(last.target))))
            if region.stub_at is not None:
                stub = rewritten.instructions[region.stub_at >> 2]
                expected = resolve_new(block.end)
                if not (stub.op == "br" and stub.dst is None
                        and stub.target == expected):
                    ces.append(Counterexample(
                        R_CTRL, region.proc, block.start,
                        region.start_new,
                        "fallthrough stub targets %r, moved "
                        "code is at %r" % (stub.target, expected)))
            continue
        items_n = [(region.start_new + 4 * i,
                    rewritten.instructions[
                        (region.start_new + 4 * i) >> 2])
                   for i in range(len(region.emitted))]
        so = _summarize(items_o, orig_fixups)
        sn = _summarize(items_n, new_fixups)
        bad = False
        if sn.interior is not None:
            ces.append(Counterexample(
                R_CTRL, region.proc, block.start, region.start_new,
                "rewritten region has interior control flow at %#x"
                % sn.interior))
            bad = True
        if bad:
            continue
        ces.extend(_state_ces(region, so, sn, old2new, resolve_new))
        ces.extend(_term_ces(region, so, sn, rewritten, old2new,
                             resolve_new))
    verdict = "rejected" if ces else "accepted"
    return TransvalReport(original.name, verdict,
                          counterexamples=ces,
                          procs_checked=len(plan.procs),
                          blocks_checked=blocks)


def validate_plan(image: Image, plan: Any,
                  obs: Any = None) -> TransvalReport:
    """Rewrite unlinked *image* under *plan* and validate the result."""
    from repro.opt.rewrite import rewrite_image

    result = rewrite_image(image, plan, obs=obs)
    return validate_result(image, plan, result)


def validate_workload_plans(workload: Any, plans: Any,
                            machine_config: Any = None,
                            seed: int = 1
                            ) -> Dict[str, TransvalReport]:
    """Validate every plan against *workload*'s freshly built images.

    Instantiates the workload on a scratch machine (never runs it) so
    each plan is checked against exactly the unlinked rebuild the real
    optimized run would rewrite -- the same ``image_transform`` entry
    point, stubbed to validate instead of substitute.
    """
    from repro.cpu.config import MachineConfig
    from repro.cpu.machine import Machine

    plans_by_name = {plan.image_name: plan for plan in plans}
    reports: Dict[str, TransvalReport] = {}

    def probe(image: Image) -> Image:
        plan = plans_by_name.get(image.name)
        if plan is not None and image.name not in reports:
            reports[image.name] = validate_plan(image, plan)
        return image

    machine = Machine(machine_config or MachineConfig(), seed=seed)
    machine.image_transform = probe
    setup = getattr(workload, "setup", None)
    if setup is not None:
        setup(machine)
    else:
        workload(machine)
    for name in plans_by_name:
        if name not in reports:
            reports[name] = TransvalReport(
                name, "bailed",
                reason="workload produced no image by this name")
    return reports
