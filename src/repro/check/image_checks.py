"""Layer 1: static analysis of :mod:`repro.alpha` images.

Three families of rules, all operating on a *linked* image:

* **structure / CFG well-formedness** -- instruction addressing, branch
  targets inside the image and 4-byte aligned, no fallthrough off the
  image end, non-overlapping procedures covering the code, per-procedure
  CFGs that build cleanly with every block reachable from the entry;
* **register dataflow** -- a must-define forward analysis over each
  procedure's CFG flags registers read before any write on some path
  (floating-point reads are errors: garbage bit patterns can trap on
  real hardware; integer scratch reads are warnings), plus intra-block
  dead-write detection;
* **encoding round-trip** -- ``encode_image``/``decode_image`` must
  reproduce every instruction, procedure and symbol exactly, and the
  flat predecode records must agree with the decoded objects.

The paper's analysis half assumes all of this silently; these checks
make the assumptions machine-verified before profiles are trusted.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.alpha import regs
from repro.alpha.encoding import EncodingError, decode_image, encode_image
from repro.alpha.image import Image, Procedure
from repro.alpha.instruction import Instruction
from repro.alpha.opcodes import DIRECT_BRANCH_KINDS
from repro.check.findings import ERROR, INFO, WARNING, Finding

#: Integer registers assumed live at procedure entry (Alpha calling
#: convention): arguments, callee-saved, and the linkage/frame set.
_ABI_INT_LIVE_IN: FrozenSet[int] = frozenset(
    list(range(9, 16))      # s0-s6 / fp (callee-saved; spills read them)
    + list(range(16, 22))   # a0-a5
    + [26, 27, 28, 29, 30]  # ra, pv, at, gp, sp
    + [regs.ZERO_REG],
)
#: Floating-point registers assumed live at entry: f16-f21 (arguments),
#: f2-f9 (callee-saved) and the hardwired zero.
_ABI_FP_LIVE_IN: FrozenSet[int] = frozenset(
    [regs.NUM_INT_REGS + n for n in range(16, 22)]
    + [regs.NUM_INT_REGS + n for n in range(2, 10)]
    + [regs.FZERO_REG],
)
ABI_LIVE_IN: FrozenSet[int] = _ABI_INT_LIVE_IN | _ABI_FP_LIVE_IN

#: Opcodes after which execution cannot continue to the next address.
_NO_FALLTHROUGH_OPS = ("br", "ret", "jmp")


def _loc(image: Image, addr: Optional[int] = None,
         proc: Optional[Procedure] = None) -> str:
    parts = [image.name]
    if proc is not None:
        parts.append(proc.name)
    if addr is not None:
        parts.append("+%#x" % (addr - (image.base or 0)))
    return ":".join(parts)


def check_image(image: Image,
                max_instructions: Optional[int] = None) -> List[Finding]:
    """Run every Layer-1 rule on *image*; return the findings."""
    findings: List[Finding] = []
    if image.base is None:
        findings.append(Finding(
            "image/unlinked", ERROR, image.name,
            "image has no base address; link it before checking"))
        return findings
    findings.extend(_check_structure(image))
    findings.extend(_check_control_flow(image))
    findings.extend(_check_procedures(image))
    findings.extend(_check_roundtrip(image))
    return findings


# -- structure ---------------------------------------------------------------

def _check_structure(image: Image) -> List[Finding]:
    findings: List[Finding] = []
    base = image.base
    assert base is not None
    for index, inst in enumerate(image.instructions):
        expected = base + index * Image.INSTRUCTION_BYTES
        if inst.addr != expected:
            findings.append(Finding(
                "image/address-gap", ERROR, _loc(image, expected),
                "instruction %d has address %#x, expected %#x"
                % (index, inst.addr, expected)))
            break  # all later addresses are shifted too; one report
    # Procedures: inside the image, non-empty, non-overlapping, covering.
    spans = sorted((proc.start, proc.end, proc.name)
                   for proc in image.procedures)
    prev_end = base
    prev_name = None
    for start, end, name in spans:
        if start >= end:
            findings.append(Finding(
                "image/empty-procedure", ERROR, "%s:%s" % (image.name,
                                                           name),
                "procedure %s spans no instructions" % name))
            continue
        if start < base or end > image.end:
            findings.append(Finding(
                "image/procedure-out-of-image", ERROR,
                "%s:%s" % (image.name, name),
                "procedure %s [%#x, %#x) lies outside the image "
                "[%#x, %#x)" % (name, start, end, base, image.end)))
            continue
        if start < prev_end and prev_name is not None:
            findings.append(Finding(
                "image/overlapping-procedures", ERROR,
                "%s:%s" % (image.name, name),
                "procedure %s [%#x, %#x) overlaps %s (ends %#x)"
                % (name, start, end, prev_name, prev_end)))
        elif start > prev_end:
            findings.append(Finding(
                "image/uncovered-code", WARNING,
                _loc(image, prev_end),
                "%d bytes of code covered by no procedure"
                % (start - prev_end)))
        prev_end = max(prev_end, end)
        prev_name = name
    if image.procedures and prev_end < image.end:
        findings.append(Finding(
            "image/uncovered-code", WARNING, _loc(image, prev_end),
            "%d bytes at the image tail covered by no procedure"
            % (image.end - prev_end)))
    return findings


# -- control flow ------------------------------------------------------------

def _check_control_flow(image: Image) -> List[Finding]:
    findings: List[Finding] = []
    for inst in image.instructions:
        if (inst.info.kind in DIRECT_BRANCH_KINDS
                and inst.target is not None):
            if not (inst.addr == inst.target
                    or inst.target in image):
                findings.append(Finding(
                    "image/branch-target-out-of-image", ERROR,
                    _loc(image, inst.addr),
                    "%s targets %#x outside image [%#x, %#x)"
                    % (inst.op, inst.target, image.base or 0,
                       image.end)))
            elif inst.target % Image.INSTRUCTION_BYTES:
                findings.append(Finding(
                    "image/branch-target-misaligned", ERROR,
                    _loc(image, inst.addr),
                    "%s targets unaligned address %#x"
                    % (inst.op, inst.target)))
    if image.instructions:
        last = image.instructions[-1]
        falls = not (last.info.kind in ("br", "jump")
                     and last.op in _NO_FALLTHROUGH_OPS)
        if falls:
            findings.append(Finding(
                "image/fallthrough-off-image", ERROR,
                _loc(image, last.addr),
                "last instruction (%s) can fall through past the image "
                "end" % last.op))
    return findings


# -- per-procedure CFG + dataflow -------------------------------------------

def _check_procedures(image: Image) -> List[Finding]:
    from repro.core.cfg import build_cfg

    findings: List[Finding] = []
    for proc in image.procedures:
        if proc.start >= proc.end:
            continue  # reported by _check_structure
        try:
            cfg = build_cfg(proc)
        except Exception as exc:  # malformed input, not a checker bug
            findings.append(Finding(
                "image/cfg-build-failed", ERROR,
                "%s:%s" % (image.name, proc.name),
                "CFG construction failed: %s" % exc))
            continue
        reachable = _reachable_blocks(cfg)
        for block in cfg.blocks:
            if block.index not in reachable:
                findings.append(Finding(
                    "image/unreachable-block", WARNING,
                    _loc(image, block.start, proc),
                    "block %d [%#x, %#x) is unreachable from the "
                    "procedure entry"
                    % (block.index, block.start, block.end)))
        findings.extend(_check_dataflow(image, proc, cfg, reachable))
    return findings


def _reachable_blocks(cfg: object) -> Set[int]:
    from repro.core.cfg import EXIT

    seen = {0}
    stack = [0]
    blocks = cfg.blocks  # type: ignore[attr-defined]
    while stack:
        index = stack.pop()
        for edge in blocks[index].succs:
            if edge.dst != EXIT and edge.dst not in seen:
                seen.add(edge.dst)
                stack.append(edge.dst)
    return seen


def _block_uses_defs(
        block: object) -> Tuple[List[Tuple[Instruction, int]], Set[int]]:
    """Return ([(inst, reg) upward-exposed uses], {defined regs})."""
    uses: List[Tuple[Instruction, int]] = []
    defined: Set[int] = set()
    for inst in block.instructions:  # type: ignore[attr-defined]
        for src in inst.srcs:
            if src not in defined:
                uses.append((inst, src))
        if inst.dst is not None:
            defined.add(inst.dst)
    return uses, defined


def _check_dataflow(image: Image, proc: Procedure, cfg: object,
                    reachable: Set[int]) -> List[Finding]:
    """Must-define analysis: flag reads of maybe-uninitialized registers
    and intra-block dead writes."""
    blocks = cfg.blocks  # type: ignore[attr-defined]
    per_block = {b.index: _block_uses_defs(b) for b in blocks}
    universe: Set[int] = set(range(regs.NUM_REGS))
    defined_in: Dict[int, Set[int]] = {
        b.index: set(universe) for b in blocks}
    defined_in[0] = set(ABI_LIVE_IN)

    changed = True
    while changed:
        changed = False
        for block in blocks:
            if block.index not in reachable:
                continue
            if block.index != 0:
                preds = [e.src for e in block.preds
                         if e.src in reachable]
                if preds:
                    new_in = set.intersection(*[
                        defined_in[p] | per_block[p][1] for p in preds])
                else:
                    new_in = set(ABI_LIVE_IN)
                if new_in != defined_in[block.index]:
                    defined_in[block.index] = new_in
                    changed = True

    findings: List[Finding] = []
    reported: Set[Tuple[str, int]] = set()
    for block in blocks:
        if block.index not in reachable:
            continue
        uses, _ = per_block[block.index]
        available = defined_in[block.index]
        for inst, reg in uses:
            if reg in available or (proc.name, reg) in reported:
                continue
            reported.add((proc.name, reg))
            severity = ERROR if regs.is_fp(reg) else WARNING
            findings.append(Finding(
                "image/use-before-def", severity,
                _loc(image, inst.addr, proc),
                "%s reads %s before any write on some path from the "
                "entry" % (inst.op, regs.register_name(reg)),
                detail="%s register; simulated state boots to zero but "
                       "the value is undefined by the calling convention"
                       % ("floating-point" if regs.is_fp(reg)
                          else "integer")))
        findings.extend(_dead_writes(image, proc, block))
    return findings


def _dead_writes(image: Image, proc: Procedure,
                 block: object) -> Iterable[Finding]:
    pending: Dict[int, Instruction] = {}
    for inst in block.instructions:  # type: ignore[attr-defined]
        for src in inst.srcs:
            pending.pop(src, None)
        if inst.op in ("jsr", "bsr"):
            # A call transfers control to code this analysis cannot
            # see: the callee reads ra (via ret) and may read any
            # argument register, so no earlier write is provably dead.
            pending.clear()
        if inst.dst is not None:
            earlier = pending.get(inst.dst)
            if earlier is not None:
                yield Finding(
                    "image/dead-write", INFO,
                    _loc(image, earlier.addr, proc),
                    "%s writes %s which %s at +%#x overwrites before "
                    "any read"
                    % (earlier.op, regs.register_name(inst.dst),
                       inst.op, inst.addr - (image.base or 0)))
            pending[inst.dst] = inst


# -- encoding round-trip -----------------------------------------------------

def _inst_key(inst: Instruction) -> Tuple[object, ...]:
    return (inst.op, inst.addr, inst.srcs, inst.dst,
            inst.imm or 0, inst.target)


def _check_roundtrip(image: Image) -> List[Finding]:
    findings: List[Finding] = []
    try:
        clone = decode_image(encode_image(image))
    except EncodingError as exc:
        return [Finding(
            "image/encoding-roundtrip", ERROR, image.name,
            "encode/decode failed: %s" % exc)]
    if len(clone.instructions) != len(image.instructions):
        return [Finding(
            "image/encoding-roundtrip", ERROR, image.name,
            "decoded image has %d instructions, expected %d"
            % (len(clone.instructions), len(image.instructions)))]
    for original, decoded in zip(image.instructions, clone.instructions):
        if _inst_key(original) != _inst_key(decoded):
            findings.append(Finding(
                "image/encoding-roundtrip", ERROR,
                _loc(image, original.addr),
                "instruction changed across encode/decode: %r -> %r"
                % (original.disassemble(), decoded.disassemble())))
    want_procs = {(p.name, p.start, p.end) for p in image.procedures}
    have_procs = {(p.name, p.start, p.end) for p in clone.procedures}
    if want_procs != have_procs:
        findings.append(Finding(
            "image/encoding-roundtrip", ERROR, image.name,
            "procedure table changed across encode/decode",
            detail="missing=%r extra=%r"
                   % (sorted(want_procs - have_procs),
                      sorted(have_procs - want_procs))))
    want_syms = dict(image.symbols.items())
    have_syms = dict(clone.symbols.items())
    if want_syms != have_syms:
        findings.append(Finding(
            "image/encoding-roundtrip", ERROR, image.name,
            "symbol table changed across encode/decode"))
    findings.extend(_check_predecode(image))
    return findings


def _check_predecode(image: Image) -> List[Finding]:
    """The flat predecode records must agree with the Instruction."""
    from repro.alpha.predecode import R_ADDR, R_DST, R_SRCS, decode

    findings: List[Finding] = []
    for inst in image.instructions:
        record = decode(inst)
        if record[R_ADDR] != inst.addr:
            findings.append(Finding(
                "image/predecode-mismatch", ERROR, _loc(image, inst.addr),
                "predecode address %#x != %#x"
                % (record[R_ADDR], inst.addr)))
            continue
        if tuple(record[R_SRCS]) != tuple(inst.srcs):
            findings.append(Finding(
                "image/predecode-mismatch", ERROR, _loc(image, inst.addr),
                "predecode sources %r != %r for %s"
                % (record[R_SRCS], inst.srcs, inst.op)))
        if record[R_DST] != inst.dst:
            findings.append(Finding(
                "image/predecode-mismatch", ERROR, _loc(image, inst.addr),
                "predecode destination %r != %r for %s"
                % (record[R_DST], inst.dst, inst.op)))
    return findings
