"""Layer 2: machine-checkable invariants of the analysis passes.

The paper's estimation pipeline rests on invariants it never verifies
at runtime; this module states each one as an executable check:

* **flow conservation** (ground truth): with the simulator's exact
  per-instruction and per-edge counts, executions into every CFG block
  must equal the block's executions must equal the executions out of it
  (up to a small slack for executions in flight when the instruction
  budget halts the machine mid-procedure);
* **frequency equivalence**: every member of a cycle-equivalence class
  must have the *same* ground-truth execution count -- the correctness
  claim behind section 6.1.2's class-level estimation;
* **static schedule**: issue points have ``M_i >= 1``, dual-issued
  followers have ``M_i == 0`` and must satisfy the slotting predicate
  (``PAIR_OK``) against their leader at the same issue slot, and the
  block's best case equals the last issue slot + 1;
* **culprit coverage**: every sampled dynamic stall above the analysis
  threshold either carries at least one surviving culprit whose ranges
  cover the stall cycles, or is explicitly marked ``unexplained``;
* **merge determinism**: re-merging the same shard sample maps under
  different orderings and regroupings must serialize byte-identically
  (the structural restatement of the daemon's order-independence).

Estimate-level flow residuals are also reported, at warning severity:
the paper accepts that heuristic estimates may violate flow constraints
(section 6.1.4 proposes a global solver for exactly that reason), so a
residual is diagnostic, not a defect.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.check.findings import ERROR, WARNING, Finding

#: Absolute slack (executions) allowed before ground-truth flow
#: imbalance is a finding: procedures interrupted by the instruction
#: budget or a context switch are mid-flight at one block per CPU.
FLOW_SLACK = 8.0
#: Relative slack on top of the absolute one.
FLOW_REL_SLACK = 0.01

#: Estimated-count residual (relative) beyond which a warning is filed.
ESTIMATE_REL_TOL = 0.5
#: Estimated counts below this many executions are too noisy to judge.
ESTIMATE_MIN_COUNT = 50.0

#: Numeric slack for culprit cycle-range arithmetic.
_EPS = 1e-6


def _within(a: float, b: float, slack: float = FLOW_SLACK,
            rel: float = FLOW_REL_SLACK) -> bool:
    return abs(a - b) <= slack + rel * max(abs(a), abs(b))


def _proc_loc(cfg: object, addr: Optional[int] = None) -> str:
    proc = cfg.proc  # type: ignore[attr-defined]
    name = "%s:%s" % (proc.image.name, proc.name)
    if addr is not None:
        return "%s:+%#x" % (name, addr - proc.image.base)
    return name


# -- ground-truth flow conservation -----------------------------------------

def true_block_count(gt_count: Dict[int, int], block: object) -> int:
    """Exact executions of *block* (executions of its first inst)."""
    return gt_count.get(block.start, 0)  # type: ignore[attr-defined]


def check_flow_conservation(machine: object, cfg: object,
                            slack: float = FLOW_SLACK) -> List[Finding]:
    """Verify exact flow conservation at every node of *cfg*."""
    from repro.core.validate import true_edge_count

    findings: List[Finding] = []
    if cfg.missing_edges:  # type: ignore[attr-defined]
        return findings  # unresolved indirect jumps: flow is unknowable
    gt_count = machine.gt_count  # type: ignore[attr-defined]
    for block in cfg.blocks:  # type: ignore[attr-defined]
        count = true_block_count(gt_count, block)
        if block.index != 0 and block.preds:
            in_sum = sum(true_edge_count(machine, cfg, e)
                         for e in block.preds)
            if not _within(in_sum, count, slack):
                findings.append(Finding(
                    "analysis/flow-conservation", ERROR,
                    _proc_loc(cfg, block.start),
                    "block %d executed %d times but its in-edges "
                    "carry %d" % (block.index, count, in_sum)))
        out_kinds = {e.kind for e in block.succs}
        if block.succs and "exit" not in out_kinds:
            out_sum = sum(true_edge_count(machine, cfg, e)
                          for e in block.succs)
            if not _within(out_sum, count, slack):
                findings.append(Finding(
                    "analysis/flow-conservation", ERROR,
                    _proc_loc(cfg, block.start),
                    "block %d executed %d times but its out-edges "
                    "carry %d" % (block.index, count, out_sum)))
    return findings


def check_equivalence_truth(machine: object, cfg: object,
                            classes: object,
                            slack: float = FLOW_SLACK) -> List[Finding]:
    """Members of one frequency-equivalence class must run equally."""
    from repro.core.validate import true_edge_count

    findings: List[Finding] = []
    if cfg.missing_edges:  # type: ignore[attr-defined]
        return findings
    gt_count = machine.gt_count  # type: ignore[attr-defined]
    blocks = cfg.blocks  # type: ignore[attr-defined]
    edges = cfg.edges  # type: ignore[attr-defined]
    zero = classes.zero  # type: ignore[attr-defined]
    for cid, members in classes.members.items():  # type: ignore[attr-defined]
        counts = []
        for member in members:
            if member in zero:
                continue
            if isinstance(member, tuple):
                edge = edges[member[1]]
                if edge.kind == "exit":
                    continue  # exit edges have no separate ground truth
                counts.append((member,
                               true_edge_count(machine, cfg, edge)))
            else:
                counts.append((member,
                               true_block_count(gt_count,
                                                blocks[member])))
        if len(counts) < 2:
            continue
        values = [v for _, v in counts]
        lo, hi = min(values), max(values)
        if not _within(float(lo), float(hi), slack):
            findings.append(Finding(
                "analysis/equivalence-violated", ERROR, _proc_loc(cfg),
                "equivalence class %d members executed between %d and "
                "%d times" % (cid, lo, hi),
                detail="members=%r" % (sorted(
                    str(m) for m, _ in counts),)))
    # Zero-flow members (bridges) must really never execute.
    for member in zero:
        if isinstance(member, tuple):
            edge = edges[member[1]]
            if edge.kind == "exit":
                continue
            value = true_edge_count(machine, cfg, edge)
        else:
            value = true_block_count(gt_count, blocks[member])
        if value > slack:
            findings.append(Finding(
                "analysis/equivalence-violated", ERROR, _proc_loc(cfg),
                "member %s proved zero-flow but executed %d times"
                % (member, value)))
    return findings


# -- static-schedule invariants ---------------------------------------------

def check_schedule_invariants(cfg: object,
                              schedules: Dict[int, object]
                              ) -> List[Finding]:
    """Structural invariants of every block's static schedule."""
    from repro.cpu.issue import PAIR_OK

    findings: List[Finding] = []
    for block in cfg.blocks:  # type: ignore[attr-defined]
        schedule = schedules[block.index]
        rows = schedule.rows
        prev = None
        for row in rows:
            loc = _proc_loc(cfg, row.inst.addr)
            if row.paired:
                if row.m != 0:
                    findings.append(Finding(
                        "analysis/schedule-m", ERROR, loc,
                        "dual-issued follower has M=%d (expected 0)"
                        % row.m))
                if prev is None:
                    findings.append(Finding(
                        "analysis/schedule-pairing", ERROR, loc,
                        "first instruction of a block marked paired"))
                else:
                    if prev.issue != row.issue:
                        findings.append(Finding(
                            "analysis/schedule-pairing", ERROR, loc,
                            "paired instructions issue in different "
                            "cycles (%d vs %d)"
                            % (prev.issue, row.issue)))
                    if prev.paired:
                        findings.append(Finding(
                            "analysis/schedule-pairing", ERROR, loc,
                            "three instructions share one issue slot"))
                    key = (prev.inst.info.cls, row.inst.info.cls)
                    if not PAIR_OK[key]:
                        findings.append(Finding(
                            "analysis/schedule-pairing", ERROR, loc,
                            "pair %s+%s violates the dual-issue "
                            "slotting rules" % key))
            else:
                if row.m < 1:
                    findings.append(Finding(
                        "analysis/schedule-m", ERROR, loc,
                        "issue point has M=%d (expected >= 1)" % row.m))
                if prev is not None and row.issue <= prev.issue:
                    findings.append(Finding(
                        "analysis/schedule-order", ERROR, loc,
                        "issue slot %d does not advance past %d"
                        % (row.issue, prev.issue)))
            prev = row
        if rows and schedule.best_case_cycles != rows[-1].issue + 1:
            findings.append(Finding(
                "analysis/schedule-best-case", ERROR, _proc_loc(cfg),
                "block %d best case %d != last issue slot %d + 1"
                % (block.index, schedule.best_case_cycles,
                   rows[-1].issue)))
    return findings


# -- culprit coverage --------------------------------------------------------

def check_culprit_coverage(cfg: object, schedules: Dict[int, object],
                           freq: object, samples: Dict[int, int],
                           culprit_map: Dict[int, List[object]],
                           period: float,
                           dyn_threshold: float = 0.25) -> List[Finding]:
    """Every dynamic stall must be explained or marked unexplained."""
    findings: List[Finding] = []
    for block in cfg.blocks:  # type: ignore[attr-defined]
        count = freq.block_count(block.index)  # type: ignore[attr-defined]
        if count <= 0:
            continue
        for row in schedules[block.index].rows:
            s = samples.get(row.inst.addr, 0)
            if s == 0:
                continue
            dyn = s * period / count - row.m
            if dyn < dyn_threshold:
                continue
            total_dyn = dyn * count
            loc = _proc_loc(cfg, row.inst.addr)
            culprits = culprit_map.get(row.inst.addr)
            if not culprits:
                findings.append(Finding(
                    "analysis/unexplained-stall", ERROR, loc,
                    "%.0f dynamic stall cycles have no culprit and no "
                    "unexplained marker" % total_dyn))
                continue
            covered = 0.0
            for culprit in culprits:
                if culprit.min_cycles > culprit.max_cycles + _EPS:
                    findings.append(Finding(
                        "analysis/culprit-range", ERROR, loc,
                        "culprit %s has min %.1f > max %.1f"
                        % (culprit.reason, culprit.min_cycles,
                           culprit.max_cycles)))
                covered += culprit.max_cycles
            if covered + _EPS < total_dyn * (1.0 - 1e-9):
                findings.append(Finding(
                    "analysis/unexplained-stall", ERROR, loc,
                    "culprit ranges cover %.0f of %.0f dynamic stall "
                    "cycles with no unexplained remainder"
                    % (covered, total_dyn)))
    return findings


# -- estimate-level flow residuals ------------------------------------------

def check_estimate_flow(cfg: object, freq: object,
                        rel_tol: float = ESTIMATE_REL_TOL
                        ) -> List[Finding]:
    """Report (as warnings) large flow residuals in the estimates."""
    findings: List[Finding] = []
    if cfg.missing_edges:  # type: ignore[attr-defined]
        return findings
    for block in cfg.blocks:  # type: ignore[attr-defined]
        count = freq.block_count(block.index)  # type: ignore[attr-defined]
        if count < ESTIMATE_MIN_COUNT:
            continue
        if freq.block_confidence(block.index) == "low":  # type: ignore[attr-defined]
            # Low-confidence classes are estimated from a handful of
            # samples; their residuals measure sampling noise, not a
            # propagation defect (paper section 6.1.3).
            continue
        for edge_list, side in ((block.preds, "in"),
                                (block.succs, "out")):
            if not edge_list or (side == "in" and block.index == 0):
                continue
            if any(e.kind == "exit" for e in edge_list):
                continue
            total = sum(freq.edge_count(e.index)  # type: ignore[attr-defined]
                        for e in edge_list)
            if total <= 0:
                continue
            residual = abs(total - count) / max(total, count)
            if residual > rel_tol:
                findings.append(Finding(
                    "analysis/flow-residual", WARNING,
                    _proc_loc(cfg, block.start),
                    "estimated %s-flow %.0f disagrees with block count "
                    "%.0f by %.0f%%"
                    % (side, total, count, residual * 100.0)))
    return findings


# -- merge determinism -------------------------------------------------------

def _merged_bytes(shards: Sequence[Dict[str, Dict[object, Dict[int, int]]]],
                  periods: Dict[object, float]) -> bytes:
    """Merge *shards* and serialize the result deterministically."""
    from repro.collect.database import encode_profile
    from repro.collect.parallel import merge_shards

    merged = merge_shards(shards)
    chunks: List[bytes] = []
    for image_name in sorted(merged):
        for event in sorted(merged[image_name], key=str):
            chunks.append(encode_profile(
                merged[image_name][event], image_name, event,
                periods.get(event, 1)))
    return b"".join(chunks)


def split_profiles(profiles: Dict[str, Dict[object, Dict[int, int]]],
                   ways: int = 3) -> List[Dict[str, Dict[object,
                                                         Dict[int, int]]]]:
    """Deterministically split one profile map into *ways* shards."""
    shards: List[Dict[str, Dict[object, Dict[int, int]]]] = [
        {} for _ in range(ways)]
    for image_name, by_event in profiles.items():
        for event, by_offset in by_event.items():
            for offset, count in by_offset.items():
                shard = shards[offset % ways]
                dest = shard.setdefault(image_name, {}).setdefault(
                    event, {})
                # Split even the counts so shards genuinely overlap.
                half = count // 2
                if half and ways > 1:
                    other = shards[(offset + 1) % ways]
                    odest = other.setdefault(image_name, {}).setdefault(
                        event, {})
                    odest[offset] = odest.get(offset, 0) + half
                    count -= half
                dest[offset] = dest.get(offset, 0) + count
    return shards


def check_merge_determinism(
        profiles: Dict[str, Dict[object, Dict[int, int]]],
        periods: Dict[object, float],
        label: str = "session") -> List[Finding]:
    """Structurally verify the shard merge is order-independent.

    Splits *profiles* into overlapping shards, then merges them under
    the identity, reversed, and rotated orders plus a regrouped
    (pre-merged pair) variant; all four serializations must be
    byte-identical.
    """
    shards = split_profiles(profiles)
    reference = _merged_bytes(shards, periods)
    findings: List[Finding] = []
    variants: List[Tuple[str, List[object]]] = [
        ("reversed", list(reversed(shards))),
        ("rotated", shards[1:] + shards[:1]),
    ]
    if len(shards) >= 2:
        from repro.collect.parallel import merge_shards

        regrouped: List[object] = [merge_shards(shards[:2])]
        regrouped.extend(shards[2:])
        variants.append(("regrouped", regrouped))
    for name, variant in variants:
        if _merged_bytes(variant, periods) != reference:  # type: ignore[arg-type]
            findings.append(Finding(
                "analysis/merge-nondeterminism", ERROR, label,
                "shard merge under %s order serialized differently"
                % name))
    return findings


def verify_procedure(analysis: object,
                     dyn_threshold: float = 0.25) -> List[Finding]:
    """Run the per-procedure invariant checks on a ProcedureAnalysis.

    This is the hook :mod:`repro.core.analyze` calls when
    ``AnalysisConfig.verify_invariants`` is set; ground-truth checks
    need the simulator and run separately (see
    :mod:`repro.check.runner`).
    """
    from repro.cpu.events import EventType

    cfg = analysis.cfg  # type: ignore[attr-defined]
    schedules = analysis.schedules  # type: ignore[attr-defined]
    freq = analysis.freq  # type: ignore[attr-defined]
    profile = analysis.profile  # type: ignore[attr-defined]
    proc = analysis.proc  # type: ignore[attr-defined]
    samples = profile.samples_for(proc, EventType.CYCLES)
    culprit_map = {row.inst.addr: row.culprits
                   for row in analysis.instructions  # type: ignore[attr-defined]
                   if row.culprits}
    findings = check_schedule_invariants(cfg, schedules)
    findings.extend(check_culprit_coverage(
        cfg, schedules, freq, samples, culprit_map,
        analysis.period, dyn_threshold))  # type: ignore[attr-defined]
    findings.extend(check_estimate_flow(cfg, freq))
    return findings


# -- fleet conservation ------------------------------------------------------

def check_fleet_conservation(shipped: int, stored: int,
                             transit_lost: int = 0, residue: int = 0,
                             quarantined: int = 0,
                             spool_dropped: int = 0,
                             label: str = "fleet") -> List[Finding]:
    """Fleet-merged counts must equal the sum of per-machine sessions.

    The fleet extension of PR 4's sample-conservation books: every
    sample a machine's daemon shipped is either committed in the
    central store (any shard), lost in transit (accounted by the
    transport), dropped from a machine's bounded unacked-delta spool
    (accounted by the spool), removed by retention downsampling
    (accounted as residue), or quarantined by a shard database
    (accounted by the quarantine ledger).  On a clean run every
    accounted term is zero and the invariant collapses to
    ``stored == shipped`` exactly.  Any imbalance -- silent loss or
    double counting -- is an ERROR finding.
    """
    findings: List[Finding] = []
    accounted = (stored + transit_lost + spool_dropped + residue
                 + quarantined)
    if accounted != shipped:
        direction = ("silently lost"
                     if accounted < shipped else "double-counted")
        findings.append(Finding(
            "analysis/fleet-conservation", ERROR, label,
            "fleet store holds %d samples but machines shipped %d "
            "(transit-lost %d, spool-dropped %d, downsample residue "
            "%d, quarantined %d): %d %s"
            % (stored, shipped, transit_lost, spool_dropped, residue,
               quarantined, abs(shipped - accounted), direction)))
    return findings
