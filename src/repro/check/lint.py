"""Layer 3: repo-specific AST lint (``repro.check.lint``).

General-purpose linters cannot know which of this repo's functions must
be deterministic or which types must stay picklable; these rules can:

* ``lint/wallclock-in-hot-path`` -- no wall-clock reads inside the
  collection hot path (driver, daemon, hash tables, journal, database)
  or inside any ``*merge*`` function: sample collection and shard
  reduction must be pure functions of their inputs so runs and merges
  are reproducible;
* ``lint/unseeded-random`` -- no module-level :mod:`random` calls
  anywhere in the package (seeded ``random.Random(seed)`` instances are
  the sanctioned source of pseudo-randomness);
* ``lint/unordered-set-iteration`` -- iterating a ``set`` in a module
  that produces serialized output must go through ``sorted``: set order
  varies with hash seeding, which silently breaks byte-identical
  serialization;
* ``lint/mutable-default-arg`` -- the classic shared-mutable-default
  hazard, anywhere;
* ``lint/mutable-picklable-field`` -- picklable work-spec dataclasses
  (``ShardSpec``, ``FaultPlan``, ``FaultSpec``...) must not declare
  mutable class-level defaults: instances cross process boundaries and
  a shared default is a race waiting to happen;
* ``lint/unguarded-hook`` -- a function taking an ``obs``/``faults``/
  ``injector`` hook defaulting to ``None`` must normalize it through
  the NULL-object pattern (``obs = obs or NULL_OBS``) before
  dereferencing it;
* ``lint/unguarded-ctx-write`` -- context-table writes (an
  ``.intern(...)`` call on a receiver whose dotted name mentions
  ``ctx``) must sit lexically inside an ``if <...> is not NULL_CTX:``
  guard: the context register of a ctx-less process is the reserved
  ``<other>`` id and must never be interned as a class of its own;
* ``lint/unseeded-backoff`` -- retry/backoff logic (any function whose
  name mentions ``retry`` or ``backoff``) must be replayable: no
  direct wall-clock reads or ``time.sleep`` calls (inject the sleeper
  so tests and chaos replays can capture the schedule) and no
  zero-argument ``random.Random()`` jitter (an OS-entropy seed makes
  the backoff schedule -- and every fleet-level loss account downstream
  of it -- unreproducible);
* ``lint/swallowed-exception`` -- no silently swallowed errors: a bare
  ``except:`` is flagged outright, and an ``except <type>:`` whose
  body is nothing but ``pass``/``...`` discards a failure the caller
  will never hear about.  Handle it, log it through the obs hook, or
  waive the specific line with a reason.

Suppress a finding with a ``# dcpicheck: ignore`` or
``# dcpicheck: ignore[rule-name]`` comment on the offending line; the
rule name takes the bare form (``unseeded-random``) or the full id.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.check.findings import ERROR, Finding

#: Modules (package-relative posix paths) that form the collection /
#: merge hot path: wall-clock reads here break determinism.
HOT_PATH_MODULES: Tuple[str, ...] = (
    "collect/driver.py",
    "collect/daemon.py",
    "collect/hashtable.py",
    "collect/journal.py",
    "collect/database.py",
    "collect/prng.py",
)

#: Modules whose output is serialized: set iteration order leaks into
#: bytes on disk here.
SERIALIZING_MODULES: Tuple[str, ...] = (
    "collect/database.py",
    "collect/bundle.py",
    "collect/journal.py",
    "alpha/serialize.py",
    "alpha/encoding.py",
    "obs/trace.py",
    "obs/report.py",
    "obs/schema.py",
    "tools/benchrunner.py",
    "faults/audit.py",
    "check/findings.py",
)

#: Types that cross process boundaries via pickle.
PICKLABLE_TYPES: Tuple[str, ...] = (
    "ShardSpec", "ShardResult", "FaultPlan", "FaultSpec",
)

#: Hook parameters that must be NULL-object guarded, with the accepted
#: guard names.
HOOK_PARAMS: Dict[str, Tuple[str, ...]] = {
    "obs": ("NULL_OBS", "make_obs"),
    "faults": ("NULL_INJECTOR", "make_faults"),
    "injector": ("NULL_INJECTOR", "make_faults"),
}

_WALLCLOCK_CALLS: Set[Tuple[str, str]] = {
    ("time", "time"), ("time", "time_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "process_time"), ("time", "process_time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}

_SEEDED_RANDOM_FACTORIES = ("Random", "SystemRandom")

_IGNORE_RE = re.compile(
    r"#\s*dcpicheck:\s*ignore(?:\[([a-z0-9/-]+)\])?")


def _suppressions(source: str) -> Dict[int, Optional[str]]:
    """Map line number -> suppressed rule (None = all rules)."""
    out: Dict[int, Optional[str]] = {}
    for lineno, line in enumerate(source.splitlines(), 1):
        match = _IGNORE_RE.search(line)
        if match:
            rule = match.group(1)
            if rule and "/" in rule:
                rule = rule.split("/", 1)[1]
            out[lineno] = rule
    return out


def _mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set", "bytearray")
    return False


def _dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` rendered as a string, or None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_set_expr(node: ast.expr, set_vars: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_vars:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        return (_is_set_expr(node.left, set_vars)
                or _is_set_expr(node.right, set_vars))
    return False


class _Linter(ast.NodeVisitor):
    def __init__(self, relpath: str, source: str) -> None:
        self.relpath = relpath
        self.findings: List[Finding] = []
        self.suppressions = _suppressions(source)
        self.hot_module = relpath in HOT_PATH_MODULES
        self.serializing = relpath in SERIALIZING_MODULES
        self._func_stack: List[str] = []
        self._class_stack: List[ast.ClassDef] = []
        self._set_vars: List[Set[str]] = [set()]
        #: lexical depth of enclosing ``is not NULL_CTX`` guards.
        self._ctx_guard = 0

    # -- helpers ----------------------------------------------------------

    def _report(self, rule: str, lineno: int, message: str,
                detail: str = "") -> None:
        suppressed = self.suppressions.get(lineno)
        bare = rule.split("/", 1)[1]
        if lineno in self.suppressions and suppressed in (None, bare,
                                                          rule):
            return
        self.findings.append(Finding(
            rule, ERROR, "%s:%d" % (self.relpath, lineno), message,
            detail))

    def _in_merge_function(self) -> bool:
        return any("merge" in name for name in self._func_stack)

    def _in_backoff_function(self) -> bool:
        return any("retry" in name.lower() or "backoff" in name.lower()
                   for name in self._func_stack)

    # -- function-level rules ---------------------------------------------

    def _visit_function(self, node: ast.AST) -> None:
        args = node.args  # type: ignore[attr-defined]
        all_args = list(args.posonlyargs) + list(args.args) + list(
            args.kwonlyargs)
        defaults = list(args.defaults) + list(args.kw_defaults)
        # Align defaults with the tail of the positional args.
        pos = list(args.posonlyargs) + list(args.args)
        pos_defaults = args.defaults
        pairs: List[Tuple[ast.arg, Optional[ast.expr]]] = []
        offset = len(pos) - len(pos_defaults)
        for index, arg in enumerate(pos):
            default = (pos_defaults[index - offset]
                       if index >= offset else None)
            pairs.append((arg, default))
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            pairs.append((arg, default))
        del all_args, defaults

        for arg, default in pairs:
            if default is not None and _mutable_default(default):
                self._report(
                    "lint/mutable-default-arg", default.lineno,
                    "parameter %r of %s() has a mutable default"
                    % (arg.arg, node.name))  # type: ignore[attr-defined]

        self._check_hook_guards(node, pairs)

        self._func_stack.append(node.name)  # type: ignore[attr-defined]
        self._set_vars.append(set())
        self.generic_visit(node)
        self._set_vars.pop()
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _check_hook_guards(
            self, node: ast.AST,
            pairs: Sequence[Tuple[ast.arg, Optional[ast.expr]]]) -> None:
        for arg, default in pairs:
            hooks = HOOK_PARAMS.get(arg.arg)
            if hooks is None or default is None:
                continue
            if not (isinstance(default, ast.Constant)
                    and default.value is None):
                continue
            if self._hook_guarded(node, arg.arg, hooks):
                continue
            use = self._unguarded_hook_use(node, arg.arg)
            if use is not None:
                self._report(
                    "lint/unguarded-hook", use,
                    "%s() dereferences optional hook %r without a "
                    "NULL-object guard"
                    % (node.name, arg.arg),  # type: ignore[attr-defined]
                    detail="normalize with '%s = %s or %s' before use"
                           % (arg.arg, arg.arg, hooks[0]))

    @staticmethod
    def _hook_guarded(node: ast.AST, name: str,
                      guards: Tuple[str, ...]) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Assign):
                targets = [t.id for t in child.targets
                           if isinstance(t, ast.Name)]
                if name in targets:
                    text = ast.dump(child.value)
                    if any(guard in text for guard in guards):
                        return True
                    # Re-binding through another call (e.g. a config
                    # normalizer) also counts as a guard.
                    if isinstance(child.value, ast.Call):
                        return True
        return False

    @staticmethod
    def _unguarded_hook_use(node: ast.AST, name: str) -> Optional[int]:
        """First line dereferencing *name* outside an if-guard on it."""

        def mentions(expr: ast.AST) -> bool:
            return any(isinstance(n, ast.Name) and n.id == name
                       for n in ast.walk(expr))

        def scan(stmts: Iterable[ast.stmt]) -> Optional[int]:
            for stmt in stmts:
                if isinstance(stmt, ast.If) and mentions(stmt.test):
                    continue  # uses under an explicit None-check are ok
                for child in ast.walk(stmt):
                    if (isinstance(child, ast.Attribute)
                            and isinstance(child.value, ast.Name)
                            and child.value.id == name):
                        return child.lineno
            return None

        return scan(node.body)  # type: ignore[attr-defined]

    # -- class-level rules -------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node)
        if self._is_picklable_spec(node):
            for stmt in node.body:
                value: Optional[ast.expr] = None
                if isinstance(stmt, ast.AnnAssign):
                    value = stmt.value
                elif isinstance(stmt, ast.Assign):
                    value = stmt.value
                if value is not None and _mutable_default(value):
                    self._report(
                        "lint/mutable-picklable-field", value.lineno,
                        "picklable type %s declares a mutable "
                        "class-level default" % node.name,
                        detail="use a dataclasses.field(default_factory="
                               "...) or an immutable default")
        self.generic_visit(node)
        self._class_stack.pop()

    @staticmethod
    def _is_picklable_spec(node: ast.ClassDef) -> bool:
        if node.name in PICKLABLE_TYPES:
            return True
        for deco in node.decorator_list:
            if isinstance(deco, ast.Call):
                for kw in deco.keywords:
                    if (kw.arg == "frozen"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True):
                        return True
        return False

    # -- statement / expression rules --------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value, self._set_vars[-1]):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_vars[-1].add(target.id)
        else:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_vars[-1].discard(target.id)
        self.generic_visit(node)

    @staticmethod
    def _is_null_ctx_guard(test: ast.expr) -> bool:
        """Does *test* contain an ``... is not NULL_CTX`` comparison?"""

        def is_null_ctx(expr: ast.expr) -> bool:
            return (isinstance(expr, ast.Name)
                    and expr.id == "NULL_CTX") or (
                isinstance(expr, ast.Attribute)
                and expr.attr == "NULL_CTX")

        for child in ast.walk(test):
            if isinstance(child, ast.Compare):
                operands = [child.left] + list(child.comparators)
                if (any(isinstance(op, ast.IsNot) for op in child.ops)
                        and any(is_null_ctx(op) for op in operands)):
                    return True
        return False

    def visit_If(self, node: ast.If) -> None:
        guarded = self._is_null_ctx_guard(node.test)
        self.visit(node.test)
        if guarded:
            self._ctx_guard += 1
        for stmt in node.body:
            self.visit(stmt)
        if guarded:
            self._ctx_guard -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr == "intern"
                and self._ctx_guard == 0):
            receiver = _dotted_name(func.value)
            if receiver is not None and "ctx" in receiver.lower():
                self._report(
                    "lint/unguarded-ctx-write", node.lineno,
                    "%s.intern() outside an 'is not NULL_CTX' guard"
                    % receiver,
                    detail="interning the null context mints a bogus "
                           "class id; guard the write with "
                           "'if <ctx> is not NULL_CTX:'")
        if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name):
            owner, method = func.value.id, func.attr
            if (owner, method) in _WALLCLOCK_CALLS and (
                    self.hot_module or self._in_merge_function()):
                self._report(
                    "lint/wallclock-in-hot-path", node.lineno,
                    "%s.%s() read in a determinism-critical path"
                    % (owner, method),
                    detail="collection and merge results must be pure "
                           "functions of their inputs")
            if owner == "random" and method not in \
                    _SEEDED_RANDOM_FACTORIES:
                self._report(
                    "lint/unseeded-random", node.lineno,
                    "module-level random.%s() call; use a seeded "
                    "random.Random instance" % method)
            if self._in_backoff_function():
                if ((owner, method) in _WALLCLOCK_CALLS
                        or (owner, method) == ("time", "sleep")):
                    self._report(
                        "lint/unseeded-backoff", node.lineno,
                        "%s.%s() inside retry/backoff logic"
                        % (owner, method),
                        detail="derive delays from a seeded schedule "
                               "and inject the sleeper so the backoff "
                               "is replayable")
                if (owner == "random" and method == "Random"
                        and not node.args and not node.keywords):
                    self._report(
                        "lint/unseeded-backoff", node.lineno,
                        "zero-argument random.Random() inside "
                        "retry/backoff logic",
                        detail="an OS-entropy seed makes the jitter "
                               "schedule unreproducible; pass an "
                               "explicit seed")
        self.generic_visit(node)

    def _check_iteration(self, node: ast.AST, iterable: ast.expr) -> None:
        if not self.serializing:
            return
        if _is_set_expr(iterable, self._set_vars[-1]):
            self._report(
                "lint/unordered-set-iteration", iterable.lineno,
                "iterating a set in a module that serializes output; "
                "wrap the iterable in sorted()")

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node, node.iter)
        self.generic_visit(node)

    def visit_comprehension_generators(
            self, generators: Sequence[ast.comprehension]) -> None:
        for gen in generators:
            self._check_iteration(gen, gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    # -- lint/swallowed-exception -------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(
                "lint/swallowed-exception", node.lineno,
                "bare except: catches everything, including "
                "KeyboardInterrupt and typos; name the exception")
        elif all(isinstance(stmt, ast.Pass)
                 or (isinstance(stmt, ast.Expr)
                     and isinstance(stmt.value, ast.Constant)
                     and stmt.value.value is Ellipsis)
                 for stmt in node.body):
            self._report(
                "lint/swallowed-exception", node.lineno,
                "except-and-pass silently discards the failure; "
                "handle it, report it via the obs hook, or waive "
                "this line with a reason")
        self.generic_visit(node)


def lint_source(source: str, relpath: str) -> List[Finding]:
    """Lint one module's *source*; *relpath* is package-relative."""
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return [Finding(
            "lint/syntax-error", ERROR,
            "%s:%d" % (relpath, exc.lineno or 0),
            "module does not parse: %s" % exc.msg)]
    linter = _Linter(relpath.replace(os.sep, "/"), source)
    linter.visit(tree)
    return linter.findings


def lint_paths(root: str) -> List[Finding]:
    """Lint every ``.py`` file under *root* (the ``repro`` package)."""
    findings: List[Finding] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames
                             if d != "__pycache__")
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            relpath = os.path.relpath(path, root)
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            findings.extend(lint_source(source, relpath))
    return findings
