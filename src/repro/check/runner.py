"""Orchestration for ``dcpicheck``: run check layers, build the report.

The runner knows how to materialize each layer's inputs:

* **image** -- instantiate each workload on a fresh machine (linking
  fixes absolute addresses) and run :func:`repro.check.image_checks.
  check_image` over every linked image, without executing anything;
* **analysis** -- profile each workload under a CYCLES-mode
  :class:`ProfileSession`, analyze every sampled procedure, and verify
  the paper's invariants against both the analysis outputs and the
  simulator's ground truth;
* **lint** -- walk the ``repro`` package source through
  :func:`repro.check.lint.lint_paths`;
* **rewrite** -- profile each workload, build the same rewrite plans
  ``dcpiopt`` would, and statically prove each plan
  semantics-preserving with :mod:`repro.check.transval` (Layer 4) --
  no optimized run is ever executed.

Findings are deduplicated across workloads (several registry entries
link the same generated images) and aggregated into a
:class:`~repro.check.findings.CheckReport` with per-layer runtimes.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.check.findings import (LAYERS, CheckReport, Finding, Waiver,
                                  load_waivers)

#: Default instruction budget per workload for the analysis layer --
#: enough for every procedure to accumulate samples at the default
#: CYCLES period while keeping a full-registry run interactive.
DEFAULT_MAX_INSTRUCTIONS = 60_000


@dataclass
class CheckConfig:
    """Settings for one ``dcpicheck`` run."""

    layers: Tuple[str, ...] = LAYERS
    workloads: Tuple[str, ...] = ()   # empty = the full registry
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS
    seed: int = 1
    dyn_threshold: float = 0.25
    waivers_path: Optional[str] = None
    src_root: Optional[str] = None    # default: the repro package

    def __post_init__(self) -> None:
        for layer in self.layers:
            if layer not in LAYERS:
                raise ValueError("unknown layer %r; known: %s"
                                 % (layer, ", ".join(LAYERS)))

    def resolved_workloads(self) -> Tuple[str, ...]:
        if self.workloads:
            return self.workloads
        from repro.workloads.registry import WORKLOADS

        return tuple(WORKLOADS)

    def resolved_src_root(self) -> str:
        if self.src_root is not None:
            return self.src_root
        import repro

        return os.path.dirname(os.path.abspath(repro.__file__))


def _dedupe(findings: Sequence[Finding]) -> List[Finding]:
    seen = set()
    out: List[Finding] = []
    for finding in findings:
        if finding not in seen:
            seen.add(finding)
            out.append(finding)
    return out


def run_image_layer(workloads: Sequence[str],
                    seed: int = 1) -> List[Finding]:
    """Layer 1 over every image each workload links."""
    from repro.check.image_checks import check_image
    from repro.cpu.config import MachineConfig
    from repro.cpu.machine import Machine
    from repro.workloads.registry import get_workload

    findings: List[Finding] = []
    for name in workloads:
        workload = get_workload(name)
        machine = Machine(MachineConfig(num_cpus=workload.num_cpus),
                          seed=seed)
        workload.setup(machine)
        for image in machine.loader.images:
            findings.extend(check_image(image))
    return _dedupe(findings)


def run_analysis_layer(workloads: Sequence[str],
                       max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                       seed: int = 1,
                       dyn_threshold: float = 0.25) -> List[Finding]:
    """Layer 2: profile each workload, verify analysis invariants."""
    from repro.check.analysis_checks import (check_equivalence_truth,
                                             check_flow_conservation,
                                             check_merge_determinism,
                                             verify_procedure)
    from repro.collect.session import ProfileSession, SessionConfig
    from repro.core.analyze import analyze_image
    from repro.cpu.config import MachineConfig
    from repro.workloads.registry import get_workload

    findings: List[Finding] = []
    for name in workloads:
        workload = get_workload(name)
        session = ProfileSession(
            MachineConfig(num_cpus=workload.num_cpus),
            SessionConfig(mode="cycles", seed=seed))
        result = session.run(workload,
                             max_instructions=max_instructions)
        machine = result.machine
        for profile in result.profiles.values():
            analyses = analyze_image(profile.image, profile)
            for analysis in analyses.values():
                findings.extend(verify_procedure(
                    analysis, dyn_threshold=dyn_threshold))
                findings.extend(check_flow_conservation(
                    machine, analysis.cfg))
                findings.extend(check_equivalence_truth(
                    machine, analysis.cfg, analysis.freq.classes))
        export = result.export_mergeable()
        findings.extend(check_merge_determinism(
            export["profiles"], export["periods"], label=name))
    return _dedupe(findings)


def run_lint_layer(src_root: str) -> List[Finding]:
    """Layer 3 over the package source tree."""
    from repro.check.lint import lint_paths

    return lint_paths(src_root)


def plan_workload(name: object,
                  max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                  seed: int = 1) -> Tuple[object, List[object]]:
    """Profile *name* and build its rewrite plans, optimizer-style.

    *name* is a registry name or a Workload object.  Returns
    ``(workload, plans)`` -- the exact inputs
    :func:`repro.check.transval.validate_workload_plans` wants.
    Workloads whose profile captured no cycles produce no plan.
    """
    from repro.collect.session import ProfileSession, SessionConfig
    from repro.core.analyze import AnalysisConfig, analyze_image
    from repro.cpu.config import MachineConfig
    from repro.cpu.events import EventType
    from repro.opt import OptConfig, build_plan
    from repro.workloads.registry import get_workload

    workload = get_workload(name) if isinstance(name, str) else name
    session = ProfileSession(
        MachineConfig(num_cpus=workload.num_cpus),
        SessionConfig(mode="cycles", seed=seed))
    collected = session.run(workload,
                            max_instructions=max_instructions)
    plans: List[object] = []
    for image in collected.machine.loader.images:
        profile = collected.profiles.get(image.name)
        if profile is None or not profile.total(EventType.CYCLES):
            continue
        analyses = analyze_image(image, profile, AnalysisConfig())
        if analyses:
            plans.append(build_plan(image, analyses, OptConfig()))
    return workload, plans


def run_rewrite_layer(workloads: Sequence[str],
                      max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                      seed: int = 1) -> List[Finding]:
    """Layer 4: statically validate each workload's rewrite plans."""
    from repro.check.transval import validate_workload_plans

    findings: List[Finding] = []
    for name in workloads:
        workload, plans = plan_workload(
            name, max_instructions=max_instructions, seed=seed)
        if not plans:
            continue
        reports = validate_workload_plans(workload, plans, seed=seed)
        for report in reports.values():
            findings.extend(report.to_findings())
    return _dedupe(findings)


def run_checks(config: Optional[CheckConfig] = None) -> CheckReport:
    """Run the configured layers; return the aggregated report."""
    config = config or CheckConfig()
    workloads = config.resolved_workloads()
    waivers: Sequence[Waiver] = ()
    if config.waivers_path and os.path.exists(config.waivers_path):
        waivers = load_waivers(config.waivers_path)
    report = CheckReport(waivers=waivers, layers=tuple(config.layers),
                         workloads=tuple(workloads))
    runtimes: Dict[str, float] = {}
    for layer in config.layers:
        started = time.perf_counter()
        if layer == "image":
            report.extend(run_image_layer(workloads, seed=config.seed))
        elif layer == "analysis":
            report.extend(run_analysis_layer(
                workloads, max_instructions=config.max_instructions,
                seed=config.seed, dyn_threshold=config.dyn_threshold))
        elif layer == "lint":
            report.extend(run_lint_layer(config.resolved_src_root()))
        elif layer == "rewrite":
            report.extend(run_rewrite_layer(
                workloads, max_instructions=config.max_instructions,
                seed=config.seed))
        runtimes[layer] = time.perf_counter() - started
    report.runtime_s = runtimes
    return report
