"""Findings, severities, reports and waivers for ``dcpicheck``.

Every checker rule reports :class:`Finding` objects with a stable rule
id (``layer/rule-name``), a severity, and a human-readable location.
:class:`CheckReport` aggregates findings, applies waivers from a
committed ``checks-waivers.toml``, and serializes to the normalized
JSON schema the CI gates consume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Severities, most severe first.
ERROR = "error"
WARNING = "warning"
INFO = "info"
SEVERITIES: Tuple[str, ...] = (ERROR, WARNING, INFO)
_SEV_RANK: Dict[str, int] = {sev: i for i, sev in enumerate(SEVERITIES)}

#: Check layers, in execution order.
LAYERS: Tuple[str, ...] = ("image", "analysis", "lint", "rewrite")

#: JSON report schema version.  2: added the ``rewrite`` layer
#: (``rewrite/*`` translation-validation rules, ISSUE 10).
REPORT_SCHEMA = 2


@dataclass(frozen=True)
class Finding:
    """One checker diagnostic.

    ``rule`` is ``<layer>/<rule-name>`` (e.g. ``image/use-before-def``);
    ``location`` is an image/procedure/address or ``file:line`` string.
    """

    rule: str
    severity: str
    location: str
    message: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError("unknown severity %r" % (self.severity,))
        if "/" not in self.rule:
            raise ValueError("rule id %r must be '<layer>/<name>'"
                             % (self.rule,))

    @property
    def layer(self) -> str:
        return self.rule.split("/", 1)[0]

    def sort_key(self) -> Tuple[int, str, str, str]:
        return (_SEV_RANK[self.severity], self.rule, self.location,
                self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "layer": self.layer,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        return "%-7s %-32s %s: %s" % (self.severity, self.rule,
                                      self.location, self.message)


@dataclass(frozen=True)
class Waiver:
    """A committed exemption for a known, triaged finding.

    ``rule`` must match the finding's rule id exactly; ``location`` is
    a substring match against the finding's location ("" matches any).
    A non-empty ``reason`` is required: waivers document *why* a
    finding is acceptable, not merely that it is silenced.
    """

    rule: str
    reason: str
    location: str = ""

    def __post_init__(self) -> None:
        if not self.reason.strip():
            raise ValueError("waiver for %r needs a non-empty reason"
                             % (self.rule,))

    def matches(self, finding: Finding) -> bool:
        if finding.rule != self.rule:
            return False
        return self.location in finding.location


def load_waivers(path: str) -> List[Waiver]:
    """Parse ``checks-waivers.toml`` into :class:`Waiver` objects.

    Uses :mod:`tomllib` when available (Python 3.11+); otherwise falls
    back to a minimal parser that understands exactly the subset the
    waiver file uses: ``[[waiver]]`` array-of-table headers and
    ``key = "string"`` pairs.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    entries = _parse_waiver_toml(raw.decode("utf-8"))
    waivers = []
    for entry in entries:
        try:
            waivers.append(Waiver(
                rule=str(entry["rule"]),
                reason=str(entry.get("reason", "")),
                location=str(entry.get("location", "")),
            ))
        except KeyError as exc:
            raise ValueError("waiver entry missing %s: %r"
                             % (exc, entry)) from exc
    return waivers


def _parse_waiver_toml(text: str) -> List[Dict[str, str]]:
    try:
        import tomllib
    except ImportError:
        tomllib = None  # Python < 3.11: use the subset parser below.
    if tomllib is not None:
        data = tomllib.loads(text)
        items = data.get("waiver", [])
        if not isinstance(items, list):
            raise ValueError("'waiver' must be an array of tables")
        return [dict(item) for item in items]
    entries: List[Dict[str, str]] = []
    current: Optional[Dict[str, str]] = None
    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped == "[[waiver]]":
            current = {}
            entries.append(current)
            continue
        if "=" in stripped and current is not None:
            key, _, value = stripped.partition("=")
            value = value.strip()
            if not (value.startswith('"') and value.endswith('"')):
                raise ValueError("line %d: only string values are "
                                 "supported in waivers" % lineno)
            current[key.strip()] = value[1:-1]
            continue
        raise ValueError("line %d: unsupported waiver syntax %r"
                         % (lineno, stripped))
    return entries


@dataclass
class CheckReport:
    """All findings of one ``dcpicheck`` run, with waivers applied."""

    findings: List[Finding] = field(default_factory=list)
    waivers: Sequence[Waiver] = ()
    layers: Tuple[str, ...] = LAYERS
    workloads: Tuple[str, ...] = ()
    runtime_s: Dict[str, float] = field(default_factory=dict)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def waiver_for(self, finding: Finding) -> Optional[Waiver]:
        for waiver in self.waivers:
            if waiver.matches(finding):
                return waiver
        return None

    def unwaived(self, severity: str = ERROR) -> List[Finding]:
        """Findings at least as severe as *severity* with no waiver."""
        rank = _SEV_RANK[severity]
        return [f for f in sorted(self.findings, key=Finding.sort_key)
                if _SEV_RANK[f.severity] <= rank
                and self.waiver_for(f) is None]

    def counts(self) -> Dict[str, int]:
        out = {sev: 0 for sev in SEVERITIES}
        waived = 0
        for finding in self.findings:
            if self.waiver_for(finding) is not None:
                waived += 1
            else:
                out[finding.severity] += 1
        out["waived"] = waived
        return out

    def to_dict(self) -> Dict[str, object]:
        rows = []
        for finding in sorted(self.findings, key=Finding.sort_key):
            row = finding.to_dict()
            waiver = self.waiver_for(finding)
            row["waived"] = waiver is not None
            if waiver is not None:
                row["waived_reason"] = waiver.reason
            rows.append(row)
        return {
            "schema": REPORT_SCHEMA,
            "generated_by": "dcpicheck",
            "layers": list(self.layers),
            "workloads": list(self.workloads),
            "runtime_s": {k: round(v, 3)
                          for k, v in sorted(self.runtime_s.items())},
            "counts": self.counts(),
            "findings": rows,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)

    def summary(self) -> str:
        counts = self.counts()
        return ("%d error(s), %d warning(s), %d info, %d waived"
                % (counts[ERROR], counts[WARNING], counts[INFO],
                   counts["waived"]))
