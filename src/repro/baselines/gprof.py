"""The gprof baseline: procedure-entry counting plus clock sampling
(Table 1: high overhead, application scope, procedure-grain counts, no
stall information).

Uses the same binary rewriter as the pixie baseline but instruments
only procedure entries, and aggregates clock samples per procedure.
"""

from repro.baselines.instrument import instrument_image, read_counts
from repro.baselines.prof_clock import PAPER_CLOCK_PERIOD, TICK_EXTRA_COST
from repro.cpu.events import EventType
from repro.cpu.machine import Machine


class GprofProfiler:
    """gprof-style procedure profiler."""

    name = "gprof"
    scope = "App"
    grain = "proc count"
    stalls = "none"

    def __init__(self, machine_config, period=2048):
        self.machine_config = machine_config
        self.period = period

    def profile(self, workload, max_instructions=None, seed=1):
        from repro.baselines.pixie import BaselineResultBase

        base = Machine(self.machine_config, seed=seed)
        workload.setup(base)
        base.run(max_instructions=max_instructions)

        machine = Machine(self.machine_config, seed=seed)
        block_maps = {}

        def transform(image):
            new, block_map = instrument_image(image, procedures_only=True)
            block_maps[new.name] = (new, block_map)
            return new

        machine.image_transform = transform
        workload.setup(machine)

        proc_samples = {}
        scale = self.period / PAPER_CLOCK_PERIOD
        carry = [0.0]

        def sink(cpu_id, pid, pc, event, time):
            image = machine.loader.image_at(pc)
            if image is not None:
                proc = image.procedure_at(pc)
                if proc is not None:
                    key = (proc.name, image.name)
                    proc_samples[key] = proc_samples.get(key, 0) + 1
            cost = TICK_EXTRA_COST * scale + carry[0]
            charged = int(cost)
            carry[0] = cost - charged
            return charged

        for core in machine.cores:
            core.counters.configure(EventType.CYCLES, lambda: self.period)
        machine.set_sample_sink(sink)
        budget = None
        if max_instructions is not None:
            budget = int(max_instructions * 1.3)
        machine.run(max_instructions=budget)

        call_counts = {}
        for proc in machine.processes:
            for image in proc.images:
                if image.name in block_maps:
                    new, block_map = block_maps[image.name]
                    for addr, count in read_counts(proc, new,
                                                   block_map).items():
                        owner = new.procedure_at(addr)
                        if owner is not None:
                            key = (owner.name, new.name)
                            call_counts[key] = (call_counts.get(key, 0)
                                                + count)

        return BaselineResultBase(
            self.name, self.scope, self.grain, self.stalls,
            base.time, machine.time,
            data={"call_counts": call_counts,
                  "proc_samples": proc_samples})
