"""The iprobe baseline: performance-counter sampling into a raw buffer
(Table 1: high overhead, system scope, instruction-grain time,
inaccurate stalls).

The paper's section 2 explains why iprobe cannot profile continuously:
every sample is stored raw (no aggregation), so memory grows without
bound and every sample pays the full processing cost.  Both effects are
reproduced: the handler cost has no cheap "hash hit" path, and the
result reports bytes consumed per million sampled cycles.
"""

from repro.collect.driver import INTERRUPT_SETUP, PAPER_MEAN_PERIOD
from repro.collect.prng import period_sampler
from repro.cpu.events import EventType
from repro.cpu.machine import Machine

#: Raw-buffer append + the per-sample user-level processing cost.
RAW_SAMPLE_COST = 560
SAMPLE_BYTES = 16


class IprobeProfiler:
    """iprobe-style raw-buffer counter sampler."""

    name = "iprobe"
    scope = "Sys"
    grain = "inst time"
    stalls = "inaccurate"

    def __init__(self, machine_config, period=(1920, 2048)):
        self.machine_config = machine_config
        self.period = period

    def profile(self, workload, max_instructions=None, seed=1):
        from repro.baselines.pixie import BaselineResultBase

        base = Machine(self.machine_config, seed=seed)
        workload.setup(base)
        base.run(max_instructions=max_instructions)

        machine = Machine(self.machine_config, seed=seed)
        workload.setup(machine)
        buffer = []
        lo, hi = self.period
        scale = (lo + hi) / 2.0 / PAPER_MEAN_PERIOD
        carry = [0.0]

        def sink(cpu_id, pid, pc, event, time):
            buffer.append((pid, pc))
            cost = (INTERRUPT_SETUP + RAW_SAMPLE_COST) * scale + carry[0]
            charged = int(cost)
            carry[0] = cost - charged
            return charged

        for core in machine.cores:
            core.counters.configure(
                EventType.CYCLES,
                period_sampler(lo, hi, seed + core.cpu_id))
        machine.set_sample_sink(sink)
        machine.run(max_instructions=max_instructions)

        cycles = machine.time or 1
        bytes_used = len(buffer) * SAMPLE_BYTES
        return BaselineResultBase(
            self.name, self.scope, self.grain, self.stalls,
            base.time, machine.time,
            data={"samples": len(buffer),
                  "buffer_bytes": bytes_used,
                  "bytes_per_mcycle": bytes_used / (cycles / 1e6)})
