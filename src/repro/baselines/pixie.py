"""The pixie baseline: exact basic-block counting by binary rewriting
(Table 1: high overhead, application scope, instruction counts, no
stall information).

Also stands in for the paper's ``dcpix`` ground-truth tool when exact
counts are wanted from an instrumented run rather than from the
simulator's built-in accounting.
"""

from repro.baselines.instrument import instrument_image, read_counts
from repro.cpu.machine import Machine


class BaselineResultBase:
    """Common result shape for all Table 1 baselines."""

    def __init__(self, name, scope, grain, stalls, base_cycles,
                 profiled_cycles, data=None):
        self.name = name
        self.scope = scope
        self.grain = grain
        self.stalls = stalls
        self.base_cycles = base_cycles
        self.profiled_cycles = profiled_cycles
        self.data = data or {}

    @property
    def overhead(self):
        if not self.base_cycles:
            return 0.0
        return (self.profiled_cycles - self.base_cycles) / self.base_cycles

    def row(self):
        return {
            "system": self.name,
            "overhead_pct": self.overhead * 100.0,
            "scope": self.scope,
            "grain": self.grain,
            "stalls": self.stalls,
        }


class PixieProfiler:
    """Instrument every basic block; run; read exact counts back."""

    name = "pixie"
    scope = "App"
    grain = "inst count"
    stalls = "none"

    def __init__(self, machine_config, procedures_only=False):
        self.machine_config = machine_config
        self.procedures_only = procedures_only

    def profile(self, workload, max_instructions=None, seed=1):
        """Run base and instrumented executions; return the result.

        The instrumented run executes genuinely rewritten images, so the
        overhead is measured, not asserted.
        """
        base = Machine(self.machine_config, seed=seed)
        workload.setup(base)
        base.run(max_instructions=max_instructions)

        instrumented = Machine(self.machine_config, seed=seed)
        block_maps = {}

        def transform(image):
            new, block_map = instrument_image(
                image, procedures_only=self.procedures_only)
            block_maps[new.name] = (new, block_map)
            return new

        instrumented.image_transform = transform
        workload.setup(instrumented)
        # The rewritten binary executes extra instructions; give it the
        # same *workload* budget by not limiting instructions when the
        # base run completed, otherwise scale the budget up by the
        # expansion factor.
        budget = None
        if max_instructions is not None:
            budget = int(max_instructions * 1.6)
        instrumented.run(max_instructions=budget)

        counts = {}
        for proc in instrumented.processes:
            for image in proc.images:
                if image.name in block_maps:
                    new, block_map = block_maps[image.name]
                    per_block = read_counts(proc, new, block_map)
                    for addr, count in per_block.items():
                        counts[addr] = counts.get(addr, 0) + count

        return BaselineResultBase(
            self.name, self.scope, self.grain, self.stalls,
            base.time, instrumented.time,
            data={"block_counts": counts,
                  "base_instructions": base.instructions_retired,
                  "instrumented_instructions":
                      instrumented.instructions_retired})
