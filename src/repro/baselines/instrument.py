"""Binary instrumentation for the pixie/gprof baselines.

Rewrites an *unlinked* image, inserting a four-instruction counting
preamble at each basic-block leader (or only at procedure entries for
the gprof variant)::

    lda   at, =__instr_counters
    ldq   gp, <8*index>(at)
    addq  gp, 1, gp
    stq   gp, <8*index>(at)

``at`` and ``gp`` are the assembler temporaries real instrumenters
reserve.  Branch targets and procedure boundaries are remapped, so the
rewritten image runs unmodified on the simulator -- and the counts can
be read back from process memory afterwards, exactly like pixie's
``.Counts`` file.
"""

from repro.alpha import regs
from repro.alpha.image import Image
from repro.alpha.instruction import Instruction
from repro.alpha.opcodes import DIRECT_BRANCH_KINDS

COUNTER_SYMBOL = "__instr_counters"
PREAMBLE_INSTRUCTIONS = 4

_AT = regs.parse_register("at")
_GP = regs.parse_register("gp")


def _leaders(image, procedures_only=False):
    """Return the set of instrumentation points (pre-link offsets)."""
    leaders = set()
    for proc in image.procedures:
        leaders.add(proc.start)
    if procedures_only:
        return leaders
    for inst in image.instructions:
        kind = inst.info.kind
        if kind in DIRECT_BRANCH_KINDS and inst.target is not None:
            leaders.add(inst.target)
        if kind in ("cbranch", "fbranch") or (
                kind == "br" and inst.op == "br") or (
                kind == "jump" and inst.op != "jsr"):
            after = inst.addr + 4
            if after < image.code_size:
                leaders.add(after)
    return leaders


def instrument_image(image, procedures_only=False):
    """Return (instrumented unlinked image, {old leader offset: index}).

    *image* must be unlinked (instruction addresses are image offsets).
    """
    if image.base is not None:
        raise ValueError("instrument_image needs an unlinked image")
    leaders = _leaders(image, procedures_only)
    counter_index = {off: i for i, off in enumerate(sorted(leaders))}

    new = Image(image.name)
    new.data_size = image.data_size
    # Copy data symbols (offsets are preserved; procedures are re-added).
    proc_names = {proc.name for proc in image.procedures}
    for name, offset in image.symbols.items():
        if name not in proc_names:
            new.symbols.define(name, offset)
    new.add_data(COUNTER_SYMBOL, 8 * len(counter_index))

    # Carry over pending data fixups from the original assembler pass.
    old_fixup_for = {id(inst): sym for inst, sym in image.fixups}

    mapping = {}  # old offset -> new offset (of the counting preamble)
    pending_targets = []  # (new inst, old target offset)
    new_offset = 0
    per_proc = {proc.name: [] for proc in image.procedures}

    for proc in image.procedures:
        out = per_proc[proc.name]
        for inst in image.instructions[proc.start >> 2:proc.end >> 2]:
            old_offset = inst.addr
            if old_offset in counter_index:
                index = counter_index[old_offset]
                mapping[old_offset] = new_offset
                lda = Instruction("lda", ra=_AT, rb=regs.ZERO_REG, imm=0)
                new.fixups.append((lda, COUNTER_SYMBOL))
                out.extend([
                    lda,
                    Instruction("ldq", ra=_GP, rb=_AT, imm=8 * index),
                    Instruction("addq", ra=_GP, imm=1, rc=_GP),
                    Instruction("stq", ra=_GP, rb=_AT, imm=8 * index),
                ])
                new_offset += PREAMBLE_INSTRUCTIONS * 4
            else:
                mapping[old_offset] = new_offset
            copy = Instruction(inst.op, ra=inst.ra, rb=inst.rb,
                               rc=inst.rc, imm=inst.imm)
            symbol = old_fixup_for.get(id(inst))
            if symbol is not None:
                new.fixups.append((copy, symbol))
            if (inst.info.kind in DIRECT_BRANCH_KINDS
                    and inst.target is not None):
                pending_targets.append((copy, inst.target))
            out.append(copy)
            new_offset += 4

    for proc in image.procedures:
        new.add_procedure(proc.name, per_proc[proc.name])
    for copy, old_target in pending_targets:
        copy.target = mapping[old_target]

    # Remap leader offsets for count readback after linking.
    return new, {mapping[off]: idx for off, idx in counter_index.items()}


def read_counts(process, image, block_map):
    """Read the counters back from *process* memory.

    Returns {absolute block-leader address: execution count} for the
    linked instrumented *image*.
    """
    base = image.symbols.resolve(COUNTER_SYMBOL)
    return {image.base + off: process.memory.get(base + 8 * idx, 0)
            for off, idx in block_map.items()}
