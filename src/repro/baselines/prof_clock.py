"""The prof baseline: clock-interrupt PC sampling (Table 1: low
overhead, application scope, instruction-grain time, no stall info).

Two deliberate weaknesses of the original are reproduced because the
paper's section 2 calls them out:

* the sampling period is *fixed* (no randomization), so sampling can
  correlate with loop periods and bias the histogram;
* samples are taken from an existing clock interrupt, so only the
  target application is visible (kernel and other processes are not
  profiled) and activity inside interrupt handlers is invisible.
"""

from repro.cpu.events import EventType
from repro.cpu.machine import Machine

#: 1024 Hz on a 333 MHz processor ~= one tick per 325K cycles.
PAPER_CLOCK_PERIOD = 325_000
#: Handler cost: the clock tick already fires; profiling adds a bit.
TICK_EXTRA_COST = 250


class ClockProfiler:
    """prof-style fixed-period PC sampler."""

    name = "prof"
    scope = "App"
    grain = "inst time"
    stalls = "none"

    def __init__(self, machine_config, period=2048):
        self.machine_config = machine_config
        self.period = period

    def profile(self, workload, max_instructions=None, seed=1):
        from repro.baselines.pixie import BaselineResultBase

        base = Machine(self.machine_config, seed=seed)
        workload.setup(base)
        base.run(max_instructions=max_instructions)

        machine = Machine(self.machine_config, seed=seed)
        workload.setup(machine)
        target_pid = machine.processes[0].pid if machine.processes else None
        app_images = (machine.processes[0].images
                      if machine.processes else [])
        histogram = {}
        lost = [0]
        scale = self.period / PAPER_CLOCK_PERIOD
        carry = [0.0]

        def sink(cpu_id, pid, pc, event, time):
            if pid == target_pid and any(pc in img for img in app_images):
                histogram[pc] = histogram.get(pc, 0) + 1
            else:
                lost[0] += 1
            cost = TICK_EXTRA_COST * scale + carry[0]
            charged = int(cost)
            carry[0] = cost - charged
            return charged

        for core in machine.cores:
            # Fixed period: the aliasing-prone design the paper avoids.
            core.counters.configure(EventType.CYCLES, lambda: self.period)
        machine.set_sample_sink(sink)
        machine.run(max_instructions=max_instructions)

        return BaselineResultBase(
            self.name, self.scope, self.grain, self.stalls,
            base.time, machine.time,
            data={"histogram": histogram, "lost_samples": lost[0],
                  "period": self.period})
