"""Competing profilers from the paper's Table 1, implemented as
measurable baselines: pixie-style instrumentation, a prof-style clock
sampler, a gprof-style procedure profiler and an iprobe-style raw-buffer
counter sampler."""

from repro.baselines.gprof import GprofProfiler
from repro.baselines.iprobe import IprobeProfiler
from repro.baselines.pixie import PixieProfiler
from repro.baselines.prof_clock import ClockProfiler

__all__ = ["PixieProfiler", "ClockProfiler", "GprofProfiler",
           "IprobeProfiler"]
