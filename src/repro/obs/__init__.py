"""``repro.obs``: self-monitoring for the profiler itself.

The paper spends section 5 measuring its own collection system --
overhead, daemon memory, hash-table behavior.  This package gives the
reproduction the same introspection as a first-class subsystem:

* :mod:`repro.obs.metrics` -- counters, gauges and histograms in a
  registry whose snapshots merge order-independently across shards;
* :mod:`repro.obs.trace` -- hierarchical spans emitted as Chrome
  ``about:tracing``/Perfetto-compatible JSONL;
* :mod:`repro.obs.schema` -- the normalized metric namespace that
  unifies the old ad-hoc ``stats()`` dicts (which remain as shims);
* :mod:`repro.obs.report` -- the ``dcpimon`` report renderer.

Instrumentation is zero-cost when disabled: :data:`NULL_OBS` answers
every call with shared no-op objects and never reads a clock.
"""

from repro.obs.metrics import (COUNTER, GAUGE, HISTOGRAM, NULL_REGISTRY,
                               Counter, Gauge, Histogram, MetricsRegistry,
                               flatten_metrics, merge_metrics)
from repro.obs.observability import NULL_OBS, Observability, ObsConfig
from repro.obs.schema import (daemon_metrics, derive, driver_metrics,
                              hashtable_metrics, legacy_daemon_stats,
                              legacy_driver_stats, legacy_hashtable_stats,
                              session_metrics)
from repro.obs.trace import (NULL_TRACE, TraceRecorder, read_events,
                             span_durations, trace_counters)

__all__ = [
    "COUNTER", "GAUGE", "HISTOGRAM",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "NULL_REGISTRY", "NULL_OBS", "NULL_TRACE",
    "Observability", "ObsConfig", "TraceRecorder",
    "merge_metrics", "flatten_metrics",
    "read_events", "span_durations", "trace_counters",
    "driver_metrics", "daemon_metrics", "hashtable_metrics",
    "session_metrics", "derive",
    "legacy_driver_stats", "legacy_daemon_stats",
    "legacy_hashtable_stats",
]
