"""Hierarchical trace spans in Chrome trace-event form.

Spans record where a run spends its wall time -- ``span("analyze")``
around ``span("analyze.solver")`` nests naturally, and the emitted
events use the Chrome ``about:tracing`` / Perfetto JSON event schema
("ph", "ts", "dur" in microseconds), one JSON object per line (JSONL).
Wrap the lines in ``[...]`` (``jq -s .``) or use
:meth:`TraceRecorder.write` with a ``.json`` path to get a file those
viewers open directly.

The recorder takes an injected ``clock`` so tests control time
exactly; the disabled path (:data:`NULL_TRACE`) reads no clock at all.
"""

import json
from contextlib import contextmanager

from repro.obs.metrics import NULL_CONTEXT

#: Chrome trace-event phases used here: complete spans, instant
#: events, counter series, and metadata.
PH_SPAN = "X"
PH_INSTANT = "i"
PH_COUNTER = "C"
PH_METADATA = "M"


class TraceRecorder:
    """Collects trace events; hierarchical via nested ``span()``."""

    enabled = True

    def __init__(self, clock=None, pid=0, tid=0):
        if clock is None:
            import time

            clock = time.perf_counter
        self._clock = clock
        self._t0 = clock()
        self.pid = pid
        self.tid = tid
        self.events = []
        self._depth = 0

    def _now_us(self):
        return (self._clock() - self._t0) * 1e6

    @contextmanager
    def span(self, name, **args):
        """Record a complete ("X") event around the enclosed block."""
        started = self._now_us()
        self._depth += 1
        try:
            yield self
        finally:
            self._depth -= 1
            event = {"ph": PH_SPAN, "name": name, "ts": started,
                     "dur": self._now_us() - started,
                     "pid": self.pid, "tid": self.tid}
            if args:
                event["args"] = args
            self.events.append(event)

    def instant(self, name, **args):
        event = {"ph": PH_INSTANT, "name": name, "ts": self._now_us(),
                 "pid": self.pid, "tid": self.tid, "s": "t"}
        if args:
            event["args"] = args
        self.events.append(event)

    def counter(self, name, value):
        """Record one point of a counter series ("C" event)."""
        self.events.append({
            "ph": PH_COUNTER, "name": name, "ts": self._now_us(),
            "pid": self.pid, "tid": self.tid, "args": {"value": value}})

    def metadata(self, name, **args):
        self.events.append({"ph": PH_METADATA, "name": name, "ts": 0,
                            "pid": self.pid, "tid": self.tid,
                            "args": args})

    # -- output ------------------------------------------------------------

    def to_jsonl(self, extra_events=()):
        lines = [json.dumps(event, sort_keys=True)
                 for event in list(self.events) + list(extra_events)]
        return "\n".join(lines) + "\n" if lines else ""

    def write(self, path, extra_events=()):
        """Write events to *path*: JSONL, or a JSON array for ``.json``
        paths (directly loadable in ``about:tracing``/Perfetto)."""
        events = list(self.events) + list(extra_events)
        with open(path, "w") as handle:
            if str(path).endswith(".json"):
                json.dump(events, handle, indent=1, sort_keys=True)
                handle.write("\n")
            else:
                for event in events:
                    handle.write(json.dumps(event, sort_keys=True) + "\n")
        return path


class NullTrace:
    """The disabled recorder: spans cost one attribute lookup."""

    enabled = False
    events = ()

    def span(self, name, **args):
        return NULL_CONTEXT

    def instant(self, name, **args):
        pass

    def counter(self, name, value):
        pass

    def metadata(self, name, **args):
        pass

    def to_jsonl(self, extra_events=()):
        return ""

    def write(self, path, extra_events=()):
        return


NULL_TRACE = NullTrace()


def read_events(path):
    """Parse a trace file written by :meth:`TraceRecorder.write`
    (JSONL or a JSON array)."""
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("["):
        return json.loads(stripped)
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def span_durations(events):
    """Aggregate "X" spans: {name: {count, total_us, self_us}}.

    ``self_us`` excludes time spent in spans nested inside (same pid
    and tid, contained ts range), giving the per-phase exclusive time
    the ``dcpimon`` report prints.
    """
    spans = [e for e in events if e.get("ph") == PH_SPAN]
    # Sort outermost-first so a stack sweep can subtract child time.
    spans.sort(key=lambda e: (e.get("pid", 0), e.get("tid", 0),
                              e["ts"], -e["dur"]))
    self_us = [e["dur"] for e in spans]
    stack = []  # indices of spans still open at the sweep point
    for i, event in enumerate(spans):
        key = (event.get("pid", 0), event.get("tid", 0))
        while stack:
            top = spans[stack[-1]]
            if ((top.get("pid", 0), top.get("tid", 0)) != key
                    or top["ts"] + top["dur"] <= event["ts"] + 1e-9):
                stack.pop()
            else:
                break
        if stack:
            self_us[stack[-1]] -= event["dur"]
        stack.append(i)
    result = {}
    for i, event in enumerate(spans):
        entry = result.setdefault(event["name"], {"count": 0,
                                                  "total_us": 0.0,
                                                  "self_us": 0.0})
        entry["count"] += 1
        entry["total_us"] += event["dur"]
        entry["self_us"] += max(0.0, self_us[i])
    return result


def trace_counters(events):
    """Last value of every counter ("C") series in *events*."""
    values = {}
    for event in sorted((e for e in events if e.get("ph") == PH_COUNTER),
                        key=lambda e: e["ts"]):
        values[event["name"]] = event.get("args", {}).get("value")
    return values
