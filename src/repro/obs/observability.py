"""The observability bundle: one object a component instruments into.

:class:`ObsConfig` rides on :class:`~repro.collect.session.SessionConfig`
and decides whether a run is observed at all; :meth:`ObsConfig.build`
returns either a live :class:`Observability` (registry + trace
recorder sharing one injected clock) or the :data:`NULL_OBS` singleton
whose every operation is a no-op -- components hold the same reference
either way, so instrumentation sites never branch on configuration.
"""

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs.metrics import (NULL_CONTEXT, NULL_METRIC, NULL_REGISTRY,
                               MetricsRegistry, merge_metrics)
from repro.obs.trace import NULL_TRACE, TraceRecorder


@dataclass
class ObsConfig:
    """Self-monitoring settings for one profiling session."""

    enabled: bool = False
    #: record trace spans (requires reading the wall clock per span).
    trace: bool = True
    #: write the trace here when the session finishes (JSONL, or a
    #: JSON array for ``.json`` paths).
    trace_path: Optional[str] = None
    #: injected time source (tests pass a fake; None = perf_counter).
    clock: Optional[Callable[[], float]] = None

    def build(self):
        """The Observability for this config (NULL_OBS when disabled)."""
        if not self.enabled:
            return NULL_OBS
        return Observability(self)


class Observability:
    """A live metrics registry plus trace recorder on a shared clock."""

    enabled = True

    def __init__(self, config=None, pid=0):
        self.config = config or ObsConfig(enabled=True)
        self.clock = self.config.clock or time.perf_counter
        self.registry = MetricsRegistry(clock=self.clock)
        self.trace = (TraceRecorder(clock=self.clock, pid=pid)
                      if self.config.trace else NULL_TRACE)

    # Metric accessors delegate so call sites read naturally.

    def counter(self, name):
        return self.registry.counter(name)

    def gauge(self, name):
        return self.registry.gauge(name)

    def histogram(self, name, **kwargs):
        return self.registry.histogram(name, **kwargs)

    def timeit(self, name):
        return self.registry.timeit(name)

    def span(self, name, **args):
        return self.trace.span(name, **args)

    def snapshot(self, extra=()):
        """Typed metrics snapshot (registry merged with *extra* maps)."""
        return merge_metrics([self.registry.to_dict(), *extra])

    def finish(self):
        """Flush the trace to ``config.trace_path``, if configured."""
        if self.config.trace_path and self.trace.enabled:
            self.trace.write(self.config.trace_path)
        return self


class _NullObs:
    """The disabled bundle: shared no-op registry, trace, and spans."""

    enabled = False
    config = ObsConfig(enabled=False)
    registry = NULL_REGISTRY
    trace = NULL_TRACE

    def counter(self, name):
        return NULL_METRIC

    def gauge(self, name):
        return NULL_METRIC

    def histogram(self, name, **kwargs):
        return NULL_METRIC

    def timeit(self, name):
        return NULL_CONTEXT

    def span(self, name, **args):
        return NULL_CONTEXT

    def snapshot(self, extra=()):
        return merge_metrics(extra)

    def finish(self):
        return self


NULL_OBS = _NullObs()
