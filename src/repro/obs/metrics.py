"""Self-monitoring metrics: counters, gauges, histograms, registries.

The collection system's credibility rests on measuring its own cost
(paper section 5 quantifies overhead, daemon memory and hash-table
behavior); this module is the substrate those measurements flow
through.  Three metric kinds cover everything the self-profile needs:

* :class:`Counter`   -- monotonically increasing totals (samples,
  misses, spills).  Shard merge: sum.
* :class:`Gauge`     -- instantaneous levels with a tracked peak
  (daemon resident bytes).  Shard merge: max.
* :class:`Histogram` -- distributions over fixed bucket bounds (drain
  and merge latencies).  Shard merge: bucket-wise sum.

All merges are commutative and associative, so per-shard registries
reduce in any order -- the same invariant
:func:`repro.collect.parallel.merge_shards` relies on for profiles.

Time never enters implicitly: registries take an injected ``clock``
(used only by :meth:`MetricsRegistry.timeit`), and the disabled path
(:data:`NULL_REGISTRY`) reads no clock at all, so instrumented hot
paths stay zero-cost when observability is off.
"""

import time
from contextlib import contextmanager

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Default histogram bounds (seconds): exponential ladder from 100us
#: to ~100s, wide enough for both a single drain and a full analysis.
DEFAULT_BOUNDS = tuple(10.0 ** e * m
                       for e in range(-4, 3) for m in (1.0, 2.5, 5.0))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")
    kind = COUNTER

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def snapshot(self):
        return {"type": COUNTER, "value": self.value}


class Gauge:
    """An instantaneous level plus its high-water mark."""

    __slots__ = ("name", "value", "peak")
    kind = GAUGE

    def __init__(self, name):
        self.name = name
        self.value = 0
        self.peak = 0

    def set(self, value):
        self.value = value
        if value > self.peak:
            self.peak = value

    def snapshot(self):
        return {"type": GAUGE, "value": self.value, "peak": self.peak}


class Histogram:
    """A distribution over fixed, explicit bucket bounds."""

    __slots__ = ("name", "bounds", "buckets", "count", "total",
                 "min", "max")
    kind = HISTOGRAM

    def __init__(self, name, bounds=DEFAULT_BOUNDS):
        self.name = name
        self.bounds = tuple(sorted(bounds))
        # One bucket per bound (value <= bound) plus the overflow.
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def snapshot(self):
        return {
            "type": HISTOGRAM,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


class _NullMetric:
    """Accepts every metric method as a no-op (disabled path)."""

    __slots__ = ()

    def inc(self, amount=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass


NULL_METRIC = _NullMetric()


class _NullContext:
    """A reusable, allocation-free null context manager."""

    __slots__ = ()

    def __enter__(self):
        return None  # noqa: RET501 -- context value is explicitly None

    def __exit__(self, *exc):
        return False


NULL_CONTEXT = _NullContext()

_KIND_FACTORIES = {COUNTER: Counter, GAUGE: Gauge, HISTOGRAM: Histogram}


class MetricsRegistry:
    """Named metrics, created on first use, snapshotted as plain dicts.

    The snapshot form (:meth:`to_dict`) is what crosses process
    boundaries: plain picklable/JSONable dicts that
    :func:`merge_metrics` reduces order-independently.
    """

    enabled = True

    def __init__(self, clock=None):
        self._metrics = {}
        self._clock = clock or time.perf_counter

    def _get(self, name, kind, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = _KIND_FACTORIES[kind](name, **kwargs)
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise TypeError("metric %r already registered as %s, not %s"
                            % (name, metric.kind, kind))
        return metric

    def counter(self, name):
        return self._get(name, COUNTER)

    def gauge(self, name):
        return self._get(name, GAUGE)

    def histogram(self, name, bounds=DEFAULT_BOUNDS):
        return self._get(name, HISTOGRAM, bounds=bounds)

    @contextmanager
    def timeit(self, name):
        """Time a block into histogram *name* (seconds)."""
        histogram = self.histogram(name)
        started = self._clock()
        try:
            yield
        finally:
            histogram.observe(self._clock() - started)

    def __contains__(self, name):
        return name in self._metrics

    def names(self):
        return sorted(self._metrics)

    def to_dict(self):
        """{name: typed snapshot} -- plain, picklable, mergeable."""
        return {name: metric.snapshot()
                for name, metric in sorted(self._metrics.items())}


class NullRegistry:
    """The disabled registry: every lookup returns the null metric."""

    enabled = False

    def counter(self, name):
        return NULL_METRIC

    def gauge(self, name):
        return NULL_METRIC

    def histogram(self, name, bounds=DEFAULT_BOUNDS):
        return NULL_METRIC

    def timeit(self, name):
        return NULL_CONTEXT

    def __contains__(self, name):
        return False

    def names(self):
        return []

    def to_dict(self):
        return {}


NULL_REGISTRY = NullRegistry()


def _merge_two(dest, entry):
    kind = entry["type"]
    if dest["type"] != kind:
        raise TypeError("cannot merge %s into %s" % (kind, dest["type"]))
    if kind == COUNTER:
        dest["value"] += entry["value"]
    elif kind == GAUGE:
        dest["value"] = max(dest["value"], entry["value"])
        dest["peak"] = max(dest.get("peak", dest["value"]),
                           entry.get("peak", entry["value"]))
    elif kind == HISTOGRAM:
        if list(dest["bounds"]) != list(entry["bounds"]):
            raise ValueError("histogram bounds disagree")
        dest["buckets"] = [a + b for a, b in zip(dest["buckets"],
                                                 entry["buckets"])]
        dest["count"] += entry["count"]
        dest["total"] += entry["total"]
        mins = [m for m in (dest["min"], entry["min"]) if m is not None]
        maxs = [m for m in (dest["max"], entry["max"]) if m is not None]
        dest["min"] = min(mins) if mins else None
        dest["max"] = max(maxs) if maxs else None
    else:
        raise TypeError("unknown metric type %r" % kind)
    return dest


def merge_metrics(snapshots):
    """Reduce registry snapshots into one; order never matters.

    Counters sum, gauges keep the maximum (value and peak), histograms
    sum bucket-wise -- each a commutative, associative reduction, so
    any permutation or regrouping of *snapshots* gives the same result
    (property-tested in ``tests/test_obs_parallel.py``).  Accepts
    snapshot dicts or objects with a ``to_dict`` method.
    """
    merged = {}
    for snapshot in snapshots:
        if snapshot is None:
            continue
        if hasattr(snapshot, "to_dict"):
            snapshot = snapshot.to_dict()
        for name, entry in snapshot.items():
            dest = merged.get(name)
            if dest is None:
                merged[name] = {key: (list(value)
                                      if isinstance(value, list) else value)
                                for key, value in entry.items()}
            else:
                _merge_two(dest, entry)
    return merged


def flatten_metrics(snapshot):
    """Collapse a typed snapshot into {name: scalar} for display/JSON.

    Counters and gauges flatten to their value (gauges additionally
    emit ``<name>.peak``); histograms emit count/mean/max.
    """
    flat = {}
    for name, entry in snapshot.items():
        kind = entry["type"]
        if kind == COUNTER:
            flat[name] = entry["value"]
        elif kind == GAUGE:
            flat[name] = entry["value"]
            flat[name + ".peak"] = entry.get("peak", entry["value"])
        elif kind == HISTOGRAM:
            count = entry["count"]
            flat[name + ".count"] = count
            flat[name + ".mean"] = (entry["total"] / count) if count else 0.0
            if entry["max"] is not None:
                flat[name + ".max"] = entry["max"]
    return flat
