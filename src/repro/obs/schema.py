"""The normalized self-monitoring schema, and the legacy-stats shims.

Before this module, each collection component exposed its own ad-hoc
dict with overlapping, inconsistently named keys (``miss_rate`` here,
``misses`` there).  The canonical schema is a flat dotted namespace:

=======================================  ========  =======================
name                                     kind      meaning
=======================================  ========  =======================
``driver.samples``                       counter   interrupts handled
``driver.hash.hits``                     counter   hash-table hit path
``driver.hash.misses``                   counter   new-entry path
``driver.hash.evictions``                counter   entries spilled out
``driver.overflow.spills``               counter   overflow buffers filled
``driver.overflow.dropped``              counter   samples lost (backlog)
``driver.handler_cycles``                counter   total handler cost
``driver.hit_cycles``/``.miss_cycles``   counter   cost split by path
``driver.edge_samples``                  counter   double-sampling edges
``driver.kernel_memory_bytes``           gauge     non-pageable memory
``driver.cpu<N>.samples``                counter   per-CPU interrupts
``driver.cpu<N>.overflow.spills``        counter   per-CPU buffer fills
``driver.cpu<N>.overflow.dropped``       counter   per-CPU samples lost
``driver.cpu<N>.hash.evictions``         counter   per-CPU evictions
``daemon.samples``                       counter   samples merged
``daemon.entries``                       counter   hash entries processed
``daemon.cycles``                        counter   modelled daemon cost
``daemon.unknown_samples``               counter   unmapped PCs
``daemon.drains``                        counter   drain cycles
``daemon.drain_retries``                 counter   backed-off flush retries
``daemon.drain_failures``                counter   drains abandoned (shed)
``daemon.recoveries``                    counter   daemon crash recoveries
``daemon.lost_samples``                  counter   daemon-side accounted loss
``daemon.loadmaps_dropped``              counter   loadmap events lost
``daemon.resident_bytes``                gauge     resident now / peak
``session.instructions``                 counter   instructions executed
``session.cycles``                       counter   simulated cycles
``session.wall_s``                       gauge     wall time of the run
``sim.fastpath.replays``                 counter   block replays started
``sim.fastpath.replayed_instructions``   counter   instructions replayed
``sim.fastpath.bails``                   counter   replays cut short
``sim.fastpath.recordings``              counter   variants recorded
``sim.fastpath.compiled_variants``       counter   variants tiered up
``sim.fastpath.aborted_recordings``      counter   recordings abandoned
``sim.fastpath.variant_misses``          counter   gate lookups that missed
``sim.fastpath.links_followed``          counter   chained replay hops
``sim.fastpath.link_mismatches``         counter   chain checks that failed
``sim.fastpath.headroom_skips``          counter   counter-overflow skips
``sim.fastpath.dropped_variants``        counter   capacity evictions
``sim.fastpath.invalidations``           counter   full cache flushes
``sim.fastpath.context_switches``        counter   switch notifications
``sim.fastpath.blocks``                  gauge     blocks discovered
``sim.fastpath.variants``                gauge     variants resident
=======================================  ========  =======================

Raw counts only are stored and merged (rates do not sum); derived
rates -- ``driver.hash.miss_rate``, ``daemon.aggregation_factor``,
``collection.samples_per_sec`` and friends -- come from
:func:`derive`, computed from merged counts, so a sharded run's rates
are exact, not averages of averages.

``Driver.stats()``, ``Daemon.stats()`` and ``SampleHashTable.stats()``
remain as thin views over this schema with their historical key names.
"""

from repro.obs.metrics import COUNTER, GAUGE, flatten_metrics


def _counter(value):
    return {"type": COUNTER, "value": value}


def _gauge(value, peak=None):
    return {"type": GAUGE, "value": value,
            "peak": value if peak is None else peak}


def hashtable_metrics(table, prefix="hashtable"):
    """Typed snapshot of one :class:`SampleHashTable`."""
    return {
        prefix + ".hits": _counter(table.hits),
        prefix + ".misses": _counter(table.misses),
        prefix + ".evictions": _counter(table.evictions),
    }


def driver_metrics(driver):
    """Typed snapshot of a :class:`~repro.collect.driver.Driver`."""
    metrics = {
        "driver.samples": _counter(sum(s.samples for s in driver.cpus)),
        "driver.hash.hits": _counter(
            sum(s.hit_count for s in driver.cpus)),
        "driver.hash.misses": _counter(
            sum(s.miss_count for s in driver.cpus)),
        "driver.hash.evictions": _counter(
            sum(s.table.evictions for s in driver.cpus)),
        "driver.overflow.spills": _counter(
            sum(s.spills for s in driver.cpus)),
        "driver.overflow.dropped": _counter(
            sum(s.dropped for s in driver.cpus)),
        "driver.handler_cycles": _counter(
            sum(s.handler_cycles for s in driver.cpus)),
        "driver.hit_cycles": _counter(
            sum(s.hit_cycles for s in driver.cpus)),
        "driver.miss_cycles": _counter(
            sum(s.miss_cycles for s in driver.cpus)),
        "driver.edge_samples": _counter(
            sum(s.edge_samples for s in driver.cpus)),
        "driver.kernel_memory_bytes": _gauge(driver.kernel_memory_bytes()),
    }
    for cpu_id, state in enumerate(driver.cpus):
        prefix = "driver.cpu%d" % cpu_id
        metrics[prefix + ".samples"] = _counter(state.samples)
        metrics[prefix + ".overflow.spills"] = _counter(state.spills)
        metrics[prefix + ".overflow.dropped"] = _counter(state.dropped)
        metrics[prefix + ".hash.evictions"] = _counter(
            state.table.evictions)
    return metrics


def daemon_metrics(daemon):
    """Typed snapshot of a :class:`~repro.collect.daemon.Daemon`."""
    return {
        "daemon.samples": _counter(daemon.total_samples),
        "daemon.entries": _counter(daemon.entries_processed),
        "daemon.cycles": _counter(daemon.cycles),
        "daemon.unknown_samples": _counter(daemon.unknown_samples),
        "daemon.drains": _counter(daemon.drains),
        "daemon.drain_retries": _counter(daemon.drain_retries),
        "daemon.drain_failures": _counter(daemon.drain_failures),
        "daemon.recoveries": _counter(daemon.recoveries),
        "daemon.lost_samples": _counter(daemon.lost_samples),
        "daemon.loadmaps_dropped": _counter(daemon.loadmaps_dropped),
        "daemon.resident_bytes": _gauge(daemon.resident_bytes(),
                                        daemon.peak_resident_bytes()),
    }


#: :meth:`FastPath.snapshot` keys reported as gauges (current sizes);
#: everything else in the snapshot is a monotonic counter.
_FASTPATH_GAUGES = frozenset(["blocks", "variants"])


def fastpath_metrics(fastpath):
    """Typed snapshot of the simulator's block-level issue cache."""
    metrics = {}
    for key, value in fastpath.snapshot().items():
        name = "sim.fastpath." + key
        metrics[name] = (_gauge(value) if key in _FASTPATH_GAUGES
                         else _counter(value))
    return metrics


def session_metrics(result):
    """Typed snapshot of a whole run: driver + daemon + totals.

    *result* is a :class:`~repro.collect.session.SessionResult`; the
    live registry (drain timings, span-adjacent histograms) is merged
    in by :meth:`SessionResult.metrics`, not here.
    """
    metrics = {
        "session.instructions": _counter(result.instructions),
        "session.cycles": _counter(result.cycles),
    }
    metrics.update(driver_metrics(result.driver))
    metrics.update(daemon_metrics(result.daemon))
    fastpath = getattr(getattr(result, "machine", None), "fastpath", None)
    if fastpath is not None:
        metrics.update(fastpath_metrics(fastpath))
    return metrics


def _ratio(numer, denom):
    return numer / denom if denom else 0.0


def derive(snapshot):
    """Flatten a typed snapshot and add the derived rates.

    Works on single-run and shard-merged snapshots alike: everything
    is recomputed from raw counts, so merged rates are exact.
    """
    flat = flatten_metrics(snapshot)
    samples = flat.get("driver.samples", 0)
    hits = flat.get("driver.hash.hits", 0)
    misses = flat.get("driver.hash.misses", 0)
    flat["driver.hash.miss_rate"] = _ratio(misses, hits + misses)
    flat["driver.hash.aggregation_factor"] = (
        _ratio(hits + misses, misses) if misses
        else float(hits + misses or 1))
    flat["driver.eviction_rate"] = _ratio(
        flat.get("driver.hash.evictions", 0), samples)
    flat["driver.avg_cost"] = _ratio(
        flat.get("driver.handler_cycles", 0), samples)
    flat["driver.avg_hit_cost"] = _ratio(
        flat.get("driver.hit_cycles", 0), hits)
    flat["driver.avg_miss_cost"] = _ratio(
        flat.get("driver.miss_cycles", 0), misses)
    d_samples = flat.get("daemon.samples", 0)
    d_entries = flat.get("daemon.entries", 0)
    flat["daemon.aggregation_factor"] = _ratio(d_samples, d_entries)
    flat["daemon.cost_per_sample"] = _ratio(
        flat.get("daemon.cycles", 0), d_samples)
    flat["daemon.unknown_fraction"] = _ratio(
        flat.get("daemon.unknown_samples", 0), d_samples)
    # Collection-level loss accounting: driver-side drops (overflow
    # backlog, shed drains) plus daemon-side losses (crashes without a
    # recoverable checkpoint).  `loss_rate` is against every sample the
    # driver handled, so sharded/merged runs report exact rates.
    dropped = flat.get("driver.overflow.dropped", 0)
    lost = flat.get("daemon.lost_samples", 0)
    flat["collect.samples_dropped"] = dropped + lost
    flat["collect.recoveries"] = flat.get("daemon.recoveries", 0)
    flat["collect.loss_rate"] = _ratio(dropped + lost, samples)
    if "sim.fastpath.replays" in flat:
        replays = flat["sim.fastpath.replays"]
        flat["sim.fastpath.replay_fraction"] = _ratio(
            flat.get("sim.fastpath.replayed_instructions", 0),
            flat.get("session.instructions", 0))
        flat["sim.fastpath.bail_rate"] = _ratio(
            flat.get("sim.fastpath.bails", 0), replays)
        flat["sim.fastpath.link_rate"] = _ratio(
            flat.get("sim.fastpath.links_followed", 0), replays)
    # Fleet-hop accounting (repro.fleet): delivery reliability and
    # dedupe effectiveness of the machine -> central-store shipment.
    if "fleet.deltas_shipped" in flat:
        shipped = flat["fleet.deltas_shipped"]
        flat["fleet.delta_loss_rate"] = _ratio(
            flat.get("fleet.deltas_lost", 0), shipped)
        flat["fleet.duplicate_rate"] = _ratio(
            flat.get("fleet.deltas_duplicated", 0), shipped)
    if "fleet.samples_ingested" in flat:
        flat["fleet.bytes_per_sample"] = _ratio(
            flat.get("fleet.bytes_shipped",
                     flat.get("fleet.bytes_ingested", 0)),
            flat["fleet.samples_ingested"])
    wall = flat.get("session.wall_s.peak", flat.get("session.wall_s", 0.0))
    if wall:
        flat["collection.samples_per_sec"] = samples / wall
        flat["collection.instructions_per_sec"] = (
            flat.get("session.instructions", 0) / wall)
    return flat


# -- backward-compatible views (the pre-obs ad-hoc dict layouts) -----------


def legacy_hashtable_stats(table):
    """``SampleHashTable``'s historical stat names, schema-backed."""
    return {
        "hits": table.hits,
        "misses": table.misses,
        "evictions": table.evictions,
        "miss_rate": table.miss_rate,
        "aggregation_factor": table.aggregation_factor,
    }


def legacy_driver_stats(driver):
    """``Driver.stats()``'s historical keys, computed via the schema."""
    flat = derive(driver_metrics(driver))
    samples = flat["driver.samples"]
    return {
        "samples": samples,
        "hits": flat["driver.hash.hits"],
        "misses": flat["driver.hash.misses"],
        "miss_rate": _ratio(flat["driver.hash.misses"], samples),
        "eviction_rate": flat["driver.eviction_rate"],
        "avg_cost": flat["driver.avg_cost"],
        "avg_hit_cost": flat["driver.avg_hit_cost"],
        "avg_miss_cost": flat["driver.avg_miss_cost"],
        "handler_cycles": flat["driver.handler_cycles"],
        "edge_samples": flat["driver.edge_samples"],
        "dropped": flat["driver.overflow.dropped"],
        "kernel_memory_bytes": flat["driver.kernel_memory_bytes"],
    }


def legacy_daemon_stats(daemon):
    """``Daemon.stats()``'s historical keys, computed via the schema."""
    flat = derive(daemon_metrics(daemon))
    return {
        "samples": flat["daemon.samples"],
        "entries": flat["daemon.entries"],
        "aggregation": flat["daemon.aggregation_factor"],
        "cycles": flat["daemon.cycles"],
        "cost_per_sample": flat["daemon.cost_per_sample"],
        "unknown_samples": flat["daemon.unknown_samples"],
        "unknown_fraction": flat["daemon.unknown_fraction"],
        "resident_bytes": flat["daemon.resident_bytes"],
        "peak_resident_bytes": flat["daemon.resident_bytes.peak"],
        "drain_retries": flat["daemon.drain_retries"],
        "drain_failures": flat["daemon.drain_failures"],
        "recoveries": flat["daemon.recoveries"],
        "lost_samples": flat["daemon.lost_samples"],
        "samples_dropped": daemon.samples_dropped,
        "loadmaps_dropped": flat["daemon.loadmaps_dropped"],
    }
