"""Rendering for the ``dcpimon`` self-profile report.

Takes the derived flat metrics (:func:`repro.obs.schema.derive`), the
per-shard run facts, and the span aggregation
(:func:`repro.obs.trace.span_durations`) and renders the terminal
report: collection rates, per-CPU spill pressure, daemon memory, shard
wall times, and the per-analysis-phase time breakdown.
"""

import re

_CPU_KEY = re.compile(r"^driver\.cpu(\d+)\.(.+)$")


def _fmt_bytes(value):
    for unit in ("B", "KB", "MB", "GB"):
        if abs(value) < 1024 or unit == "GB":
            return ("%d %s" % (value, unit) if unit == "B"
                    else "%.1f %s" % (value, unit))
        value /= 1024.0
    return "%d B" % value


def _fmt_pct(ratio):
    return "%.2f%%" % (ratio * 100.0)


def per_cpu_rows(flat):
    """[{cpu, samples, spills, evictions}] from the flat metrics."""
    by_cpu = {}
    for name, value in flat.items():
        match = _CPU_KEY.match(name)
        if match:
            by_cpu.setdefault(int(match.group(1)), {})[
                match.group(2)] = value
    return [{"cpu": cpu,
             "samples": values.get("samples", 0),
             "spills": values.get("overflow.spills", 0),
             "evictions": values.get("hash.evictions", 0)}
            for cpu, values in sorted(by_cpu.items())]


def render_report(flat, shards=(), merge_s=None, phases=None,
                  title="self-profile"):
    """Render the full dcpimon report; returns the text."""
    lines = ["dcpimon %s" % title, "=" * max(24, len(title) + 8), ""]

    samples = flat.get("driver.samples", 0)
    lines.append("Collection")
    lines.append("  samples                  %12d" % samples)
    if "collection.samples_per_sec" in flat:
        lines.append("  samples/sec              %12.0f"
                     % flat["collection.samples_per_sec"])
    lines.append("  instructions             %12d"
                 % flat.get("session.instructions", 0))
    lines.append("  simulated cycles         %12d"
                 % flat.get("session.cycles", 0))
    lines.append("  hash-table miss rate     %12s  (aggregation x%.1f)"
                 % (_fmt_pct(flat.get("driver.hash.miss_rate", 0.0)),
                    flat.get("driver.hash.aggregation_factor", 0.0)))
    lines.append("  evictions                %12d  (rate %s)"
                 % (flat.get("driver.hash.evictions", 0),
                    _fmt_pct(flat.get("driver.eviction_rate", 0.0))))
    lines.append("  overflow spills          %12d  buffers"
                 % flat.get("driver.overflow.spills", 0))
    lines.append("  dropped samples          %12d"
                 % flat.get("driver.overflow.dropped", 0))
    lines.append("  loss rate                %12s"
                 % _fmt_pct(flat.get("collect.loss_rate", 0.0)))
    lines.append("  avg handler cost         %12.1f  cycles/sample"
                 % flat.get("driver.avg_cost", 0.0))
    lines.append("  kernel memory            %12s"
                 % _fmt_bytes(flat.get("driver.kernel_memory_bytes", 0)))
    lines.append("")

    cpu_rows = per_cpu_rows(flat)
    if cpu_rows:
        lines.append("Per-CPU")
        lines.append("  cpu      samples     spills  evictions")
        for row in cpu_rows:
            lines.append("  %-3d %12d %10d %10d"
                         % (row["cpu"], row["samples"], row["spills"],
                            row["evictions"]))
        lines.append("")

    lines.append("Daemon")
    lines.append("  entries processed        %12d"
                 % flat.get("daemon.entries", 0))
    lines.append("  aggregation factor       %12.1f  samples/entry"
                 % flat.get("daemon.aggregation_factor", 0.0))
    lines.append("  modelled cost            %12d  cycles (%.1f/sample)"
                 % (flat.get("daemon.cycles", 0),
                    flat.get("daemon.cost_per_sample", 0.0)))
    lines.append("  unknown samples          %12d  (%s)"
                 % (flat.get("daemon.unknown_samples", 0),
                    _fmt_pct(flat.get("daemon.unknown_fraction", 0.0))))
    lines.append("  resident bytes           %12s  (peak %s)"
                 % (_fmt_bytes(flat.get("daemon.resident_bytes", 0)),
                    _fmt_bytes(flat.get("daemon.resident_bytes.peak", 0))))
    if (flat.get("daemon.recoveries") or flat.get("daemon.lost_samples")
            or flat.get("daemon.drain_retries")):
        lines.append("  crash recoveries         %12d"
                     % flat.get("daemon.recoveries", 0))
        lines.append("  lost samples             %12d  (daemon-side)"
                     % flat.get("daemon.lost_samples", 0))
        lines.append("  drain retries            %12d  (%d abandoned)"
                     % (flat.get("daemon.drain_retries", 0),
                        flat.get("daemon.drain_failures", 0)))
    lines.append("")

    if shards:
        lines.append("Shards")
        lines.append("  %-28s %9s %10s %12s"
                     % ("shard", "wall_s", "samples", "instructions"))
        for shard in shards:
            lines.append("  %-28s %9.3f %10d %12d"
                         % (shard["label"], shard["wall_s"],
                            shard["samples"], shard["instructions"]))
        if merge_s is not None:
            lines.append("  merge cost %.4f s" % merge_s)
        lines.append("")

    if phases:
        lines.append("Analysis phases")
        lines.append("  %-28s %6s %10s %10s"
                     % ("phase", "calls", "total_s", "self_s"))
        ordered = sorted(phases.items(),
                         key=lambda kv: -kv[1]["total_us"])
        for name, entry in ordered:
            lines.append("  %-28s %6d %10.4f %10.4f"
                         % (name, entry["count"],
                            entry["total_us"] / 1e6,
                            entry["self_us"] / 1e6))
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"
