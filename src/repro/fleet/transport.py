"""Deltas and the (simulated) machine-to-store shipping hop.

A :class:`Delta` is the fleet's unit of shipment: everything one
machine's daemon accumulated during one epoch, tagged with the machine
id, the epoch id, a per-machine batch sequence number, and the loadmap
generation the samples were attributed under.  The triple
``(machine, epoch, batch)`` is the delta's identity; the central store
dedupes on it, which is what makes delivery idempotent and therefore
retry-safe.

:class:`DeltaTransport` is the unreliable network between daemons and
the store.  It consults the ``fleet.ship`` fault point
(:mod:`repro.faults`): ``drop`` loses the delta in transit (the samples
become accounted fleet-hop loss), ``duplicate`` delivers it twice
(the store's dedupe must absorb it), ``delay`` holds it for the next
shipment (reordering arrival without losing anything), and
``transient`` times the shipment out retryably
(:class:`ShipTimeoutError` -- the sender keeps the delta spooled and
retries with backoff).

:class:`ShipSpool` is the sender-side bounded outbox of unacked
deltas: offered deltas stay spooled until the store's ack arrives,
timeouts charge a deterministic seeded-jitter exponential backoff, and
overflow drops the oldest entry with exact loss accounting so fleet
conservation still balances to the sample.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.collect.database import FORMAT_COMPACT, encode_profile
from repro.faults.injector import (DELAY, DROP, DUPLICATE, FLEET_SHIP,
                                   NULL_INJECTOR, TRANSIENT)
from repro.obs import NULL_OBS

#: Default bounded spool capacity (deltas) per machine.
DEFAULT_SPOOL_CAPACITY = 8


class ShipTimeoutError(RuntimeError):
    """A shipment timed out retryably; the delta stays spooled."""

    def __init__(self, delta_id: str) -> None:
        super().__init__("shipment of %s timed out" % delta_id)
        self.delta_id = delta_id


@dataclass(frozen=True)
class Delta:
    """One epoch's new samples from one machine."""

    machine_id: str
    epoch: int
    batch: int
    #: loadmap generation the samples were attributed under (bumps
    #: every time the machine's traffic source respawns processes).
    generation: int
    workload: str
    seed: int
    #: {image name: {event: {offset: count}}} (plain mergeable dicts).
    profiles: Dict[str, dict]
    #: {event: mean sampling period}.
    periods: dict
    #: {image name: [(procedure, start offset, end offset), ...]};
    #: shipped with the first batch of a new loadmap generation so the
    #: store can answer procedure-level queries without the images.
    symbols: Optional[Dict[str, list]] = None
    #: accounted collection-side loss on the machine at ship time
    #: (driver drops + daemon losses), for fleet-wide loss accounting.
    machine_lost: int = 0
    #: the epoch's request-context ledger
    #: (:meth:`~repro.ctx.ledger.ContextLedger.to_meta`), shipped with
    #: the samples it attributes; None when the dimension is off.
    ctx: Optional[dict] = None

    @property
    def delta_id(self):
        """The dedupe key: stable, human-readable, order-free."""
        return "%s/e%04d/b%04d" % (self.machine_id, self.epoch, self.batch)

    def total_samples(self):
        return sum(count
                   for by_event in self.profiles.values()
                   for by_offset in by_event.values()
                   for count in by_offset.values())

    def encoded_bytes(self):
        """Wire size: canonical v3-compact encoding of every profile."""
        total = 0
        for image, by_event in self.profiles.items():
            for event, by_offset in by_event.items():
                total += len(encode_profile(
                    by_offset, image, event,
                    int(self.periods.get(event, 1)), FORMAT_COMPACT,
                    self.epoch & 0xFFFF))
        return total


@dataclass
class TransportStats:
    """Accounting for the fleet hop (everything is conserved)."""

    shipped: int = 0            # deltas handed to the transport
    delivered: int = 0          # delta copies handed to the store
    lost_deltas: int = 0        # dropped in transit
    lost_samples: int = 0       # samples aboard dropped deltas
    duplicated: int = 0         # deltas delivered twice
    delayed: int = 0            # deltas deferred to a later shipment
    timeouts: int = 0           # retryable shipment timeouts
    bytes_shipped: int = 0      # wire bytes of delivered copies

    def to_dict(self):
        return {
            "shipped": self.shipped,
            "delivered": self.delivered,
            "lost_deltas": self.lost_deltas,
            "lost_samples": self.lost_samples,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "timeouts": self.timeouts,
            "bytes_shipped": self.bytes_shipped,
        }


class DeltaTransport:
    """Ships deltas from machine daemons to the central store.

    Deterministic: given the same fault plan and the same shipment
    sequence, the same deltas are dropped/duplicated/delayed.  Every
    lost sample is accounted in :attr:`stats` -- the conservation
    invariant (``repro.check``) extends over this hop.
    """

    def __init__(self, faults=None, obs=None):
        self.faults = faults or NULL_INJECTOR
        self.obs = obs or NULL_OBS
        self.stats = TransportStats()
        self._delayed: List[Delta] = []

    def ship(self, delta):
        """Offer *delta* to the network; return the delivered copies.

        The returned list preserves arrival order (delayed deltas from
        earlier shipments arrive first); it may be empty (dropped), or
        contain the same delta twice (duplicate delivery).
        """
        self.stats.shipped += 1
        self.obs.counter("fleet.deltas_shipped").inc()
        spec = self.faults.fires(FLEET_SHIP) if self.faults.enabled else None
        if spec is not None and spec.action == TRANSIENT:
            # A retryable timeout: nothing was delivered or lost, the
            # sender's spool keeps the delta and backs off.  Deltas
            # delayed by earlier shipments stay held for the next
            # successful ship (or the final flush).
            self.stats.timeouts += 1
            self.obs.counter("fleet.ship_timeouts").inc()
            raise ShipTimeoutError(delta.delta_id)
        deliveries: List[Delta] = []
        if self._delayed:
            pending, self._delayed = self._delayed, []
            deliveries.extend(pending)
        if spec is not None and spec.action == DROP:
            self.stats.lost_deltas += 1
            self.stats.lost_samples += delta.total_samples()
            self.obs.counter("fleet.deltas_lost").inc()
            self.obs.counter("fleet.samples_lost").inc(
                delta.total_samples())
        elif spec is not None and spec.action == DELAY:
            self.stats.delayed += 1
            self.obs.counter("fleet.deltas_delayed").inc()
            self._delayed.append(delta)
        elif spec is not None and spec.action == DUPLICATE:
            self.stats.duplicated += 1
            self.obs.counter("fleet.deltas_duplicated").inc()
            deliveries.extend((delta, delta))
        else:
            deliveries.append(delta)
        for delivery in deliveries:
            self.stats.delivered += 1
            self.stats.bytes_shipped += delivery.encoded_bytes()
        if deliveries:
            self.obs.counter("fleet.bytes_shipped").inc(
                sum(d.encoded_bytes() for d in deliveries))
        return deliveries

    def flush(self):
        """Deliver anything still held back (end of session)."""
        pending, self._delayed = self._delayed, []
        for delivery in pending:
            self.stats.delivered += 1
            self.stats.bytes_shipped += delivery.encoded_bytes()
        return pending


@dataclass
class SpoolEntry:
    """One spooled delta and its shipment bookkeeping."""

    delta: Delta
    attempts: int = 0
    #: at least one copy reached the store (only the ack was lost);
    #: dropping a delivered entry from the spool loses no samples.
    delivered: bool = False


@dataclass
class ShipSpool:
    """Bounded sender-side outbox of unacked deltas.

    Deltas stay spooled from :meth:`offer` until :meth:`ack`; a
    timeout charges a deterministic exponential-backoff delay with
    seeded jitter (modelled, not slept -- the simulation has no wall
    clock) via :meth:`backoff_for_retry`.  When the spool overflows,
    the *oldest* entry is dropped and its samples are accounted
    exactly (``dropped_samples``), unless a copy already reached the
    store, so the fleet conservation identity keeps balancing:

        stored + transit_lost + spool_dropped + residue
            + quarantined == shipped
    """

    capacity: int = DEFAULT_SPOOL_CAPACITY
    #: first retry backoff, milliseconds (modelled).
    base_ms: float = 4.0
    #: backoff ceiling, milliseconds.
    cap_ms: float = 250.0
    #: jitter seed (the whole backoff sequence is deterministic).
    seed: int = 0
    offered: int = 0
    retries: int = 0
    backoff_ms: float = 0.0
    dropped_deltas: int = 0
    dropped_samples: int = 0
    peak_depth: int = 0
    _entries: List[SpoolEntry] = field(default_factory=list)
    _rng: random.Random = None

    def __post_init__(self):
        self.capacity = max(1, int(self.capacity))
        self._rng = random.Random(self.seed)

    def __len__(self):
        return len(self._entries)

    def pending(self):
        """Spooled entries, oldest first (ship in this order)."""
        return list(self._entries)

    def offer(self, delta):
        """Spool *delta*; return deltas evicted by overflow (oldest
        first), their samples already accounted in
        ``dropped_samples``."""
        self.offered += 1
        self._entries.append(SpoolEntry(delta))
        evicted = []
        while len(self._entries) > self.capacity:
            victim = self._entries.pop(0)
            self.dropped_deltas += 1
            if not victim.delivered:
                self.dropped_samples += victim.delta.total_samples()
            evicted.append(victim.delta)
        self.peak_depth = max(self.peak_depth, len(self._entries))
        return evicted

    def ack(self, delta_id):
        """The store acknowledged *delta_id*: forget it."""
        self._entries = [entry for entry in self._entries
                         if entry.delta.delta_id != delta_id]

    def mark_delivered(self, delta_id):
        """A copy reached the store (even if the ack then got lost)."""
        for entry in self._entries:
            if entry.delta.delta_id == delta_id:
                entry.delivered = True

    def backoff_for_retry(self, entry):
        """Charge one retry's backoff; return the modelled delay (ms).

        Exponential doubling from ``base_ms`` capped at ``cap_ms``,
        scaled into ``[0.5, 1.0)`` of itself by the spool's seeded
        PRNG -- no wall clock, no unseeded jitter (the
        ``lint/unseeded-backoff`` rule keeps it that way).
        """
        entry.attempts += 1
        self.retries += 1
        exponent = min(entry.attempts - 1, 16)
        delay = min(self.cap_ms, self.base_ms * (2 ** exponent))
        delay *= 0.5 + 0.5 * self._rng.random()
        self.backoff_ms += delay
        return delay

    def abandon(self):
        """Terminally drop everything still spooled (session end).

        Returns the abandoned deltas; undelivered samples land in
        ``dropped_samples`` so nothing is lost silently.
        """
        abandoned = []
        for entry in self._entries:
            self.dropped_deltas += 1
            if not entry.delivered:
                self.dropped_samples += entry.delta.total_samples()
            abandoned.append(entry.delta)
        self._entries = []
        return abandoned

    def to_dict(self):
        return {
            "capacity": self.capacity,
            "depth": len(self._entries),
            "peak_depth": self.peak_depth,
            "offered": self.offered,
            "retries": self.retries,
            "backoff_ms": round(self.backoff_ms, 3),
            "dropped_deltas": self.dropped_deltas,
            "dropped_samples": self.dropped_samples,
        }
