"""Deltas and the (simulated) machine-to-store shipping hop.

A :class:`Delta` is the fleet's unit of shipment: everything one
machine's daemon accumulated during one epoch, tagged with the machine
id, the epoch id, a per-machine batch sequence number, and the loadmap
generation the samples were attributed under.  The triple
``(machine, epoch, batch)`` is the delta's identity; the central store
dedupes on it, which is what makes delivery idempotent and therefore
retry-safe.

:class:`DeltaTransport` is the unreliable network between daemons and
the store.  It consults the ``fleet.ship`` fault point
(:mod:`repro.faults`): ``drop`` loses the delta in transit (the samples
become accounted fleet-hop loss), ``duplicate`` delivers it twice
(the store's dedupe must absorb it), ``delay`` holds it for the next
shipment (reordering arrival without losing anything).
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.collect.database import FORMAT_COMPACT, encode_profile
from repro.faults.injector import (DELAY, DROP, DUPLICATE, FLEET_SHIP,
                                   NULL_INJECTOR)
from repro.obs import NULL_OBS


@dataclass(frozen=True)
class Delta:
    """One epoch's new samples from one machine."""

    machine_id: str
    epoch: int
    batch: int
    #: loadmap generation the samples were attributed under (bumps
    #: every time the machine's traffic source respawns processes).
    generation: int
    workload: str
    seed: int
    #: {image name: {event: {offset: count}}} (plain mergeable dicts).
    profiles: Dict[str, dict]
    #: {event: mean sampling period}.
    periods: dict
    #: {image name: [(procedure, start offset, end offset), ...]};
    #: shipped with the first batch of a new loadmap generation so the
    #: store can answer procedure-level queries without the images.
    symbols: Optional[Dict[str, list]] = None
    #: accounted collection-side loss on the machine at ship time
    #: (driver drops + daemon losses), for fleet-wide loss accounting.
    machine_lost: int = 0
    #: the epoch's request-context ledger
    #: (:meth:`~repro.ctx.ledger.ContextLedger.to_meta`), shipped with
    #: the samples it attributes; None when the dimension is off.
    ctx: Optional[dict] = None

    @property
    def delta_id(self):
        """The dedupe key: stable, human-readable, order-free."""
        return "%s/e%04d/b%04d" % (self.machine_id, self.epoch, self.batch)

    def total_samples(self):
        return sum(count
                   for by_event in self.profiles.values()
                   for by_offset in by_event.values()
                   for count in by_offset.values())

    def encoded_bytes(self):
        """Wire size: canonical v3-compact encoding of every profile."""
        total = 0
        for image, by_event in self.profiles.items():
            for event, by_offset in by_event.items():
                total += len(encode_profile(
                    by_offset, image, event,
                    int(self.periods.get(event, 1)), FORMAT_COMPACT,
                    self.epoch & 0xFFFF))
        return total


@dataclass
class TransportStats:
    """Accounting for the fleet hop (everything is conserved)."""

    shipped: int = 0            # deltas handed to the transport
    delivered: int = 0          # delta copies handed to the store
    lost_deltas: int = 0        # dropped in transit
    lost_samples: int = 0       # samples aboard dropped deltas
    duplicated: int = 0         # deltas delivered twice
    delayed: int = 0            # deltas deferred to a later shipment
    bytes_shipped: int = 0      # wire bytes of delivered copies

    def to_dict(self):
        return {
            "shipped": self.shipped,
            "delivered": self.delivered,
            "lost_deltas": self.lost_deltas,
            "lost_samples": self.lost_samples,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "bytes_shipped": self.bytes_shipped,
        }


class DeltaTransport:
    """Ships deltas from machine daemons to the central store.

    Deterministic: given the same fault plan and the same shipment
    sequence, the same deltas are dropped/duplicated/delayed.  Every
    lost sample is accounted in :attr:`stats` -- the conservation
    invariant (``repro.check``) extends over this hop.
    """

    def __init__(self, faults=None, obs=None):
        self.faults = faults or NULL_INJECTOR
        self.obs = obs or NULL_OBS
        self.stats = TransportStats()
        self._delayed: List[Delta] = []

    def ship(self, delta):
        """Offer *delta* to the network; return the delivered copies.

        The returned list preserves arrival order (delayed deltas from
        earlier shipments arrive first); it may be empty (dropped), or
        contain the same delta twice (duplicate delivery).
        """
        deliveries: List[Delta] = []
        if self._delayed:
            pending, self._delayed = self._delayed, []
            deliveries.extend(pending)
        self.stats.shipped += 1
        self.obs.counter("fleet.deltas_shipped").inc()
        spec = self.faults.fires(FLEET_SHIP) if self.faults.enabled else None
        if spec is not None and spec.action == DROP:
            self.stats.lost_deltas += 1
            self.stats.lost_samples += delta.total_samples()
            self.obs.counter("fleet.deltas_lost").inc()
            self.obs.counter("fleet.samples_lost").inc(
                delta.total_samples())
        elif spec is not None and spec.action == DELAY:
            self.stats.delayed += 1
            self.obs.counter("fleet.deltas_delayed").inc()
            self._delayed.append(delta)
        elif spec is not None and spec.action == DUPLICATE:
            self.stats.duplicated += 1
            self.obs.counter("fleet.deltas_duplicated").inc()
            deliveries.extend((delta, delta))
        else:
            deliveries.append(delta)
        for delivery in deliveries:
            self.stats.delivered += 1
            self.stats.bytes_shipped += delivery.encoded_bytes()
        if deliveries:
            self.obs.counter("fleet.bytes_shipped").inc(
                sum(d.encoded_bytes() for d in deliveries))
        return deliveries

    def flush(self):
        """Deliver anything still held back (end of session)."""
        pending, self._delayed = self._delayed, []
        for delivery in pending:
            self.stats.delivered += 1
            self.stats.bytes_shipped += delivery.encoded_bytes()
        return pending
