"""Fleet-scale continuous profiling: many machines, one epoch store.

The paper ran DCPI "on most machines" at WRL and aggregated weeks of
profiles per machine; this package simulates that deployment shape.
``FleetSession`` stands up N deterministic machines (driver + daemon +
server workload each), ships per-epoch profile deltas over a faultable
transport into one crash-safe ``FleetStore``, applies retention
(keep-recent-full, merge-downsample-old), and ``FleetQuery`` answers
the fleet-wide questions -- top, movers, timeseries, regress -- with
sampling-error significance bounds.  ``dcpifleet`` is the CLI.
"""

from repro.fleet.machine import (DEFAULT_WORKLOADS, FleetConfig,
                                 FleetMachine, FleetResult, FleetSession)
from repro.fleet.query import (DEFAULT_Z, QUERY_SCHEMA, FleetQuery,
                               load_baseline, parse_epochs, share_error)
from repro.fleet.retention import (RetentionPolicy, compact,
                                   compactable_windows, downsample)
from repro.fleet.store import (LEDGER_VERSION, FleetShard, FleetStore,
                               FleetStoreBusyError, IngestRetry)
from repro.fleet.transport import (Delta, DeltaTransport, ShipSpool,
                                   ShipTimeoutError, TransportStats)

__all__ = [
    "DEFAULT_WORKLOADS",
    "DEFAULT_Z",
    "Delta",
    "DeltaTransport",
    "FleetConfig",
    "FleetMachine",
    "FleetQuery",
    "FleetResult",
    "FleetSession",
    "FleetShard",
    "FleetStore",
    "FleetStoreBusyError",
    "IngestRetry",
    "LEDGER_VERSION",
    "QUERY_SCHEMA",
    "RetentionPolicy",
    "ShipSpool",
    "ShipTimeoutError",
    "TransportStats",
    "compact",
    "compactable_windows",
    "downsample",
    "load_baseline",
    "parse_epochs",
    "share_error",
]
