"""Retention: keep recent epochs at full resolution, compact the rest.

A :class:`RetentionPolicy` keeps the newest ``keep_full`` epochs
untouched and merge-downsamples older ones: complete, aligned windows
of ``window`` consecutive epochs are merged into a single epoch (the
window start), optionally downsampling counts by ``count_divisor``.

Nothing is lost silently.  Merging is a lossless commutative sum;
downsampling divides each merged count by the divisor and records the
integer remainder in the store ledger's ``downsample_residue``, so the
accounting identity

    pre-compaction total == post-compaction total + recorded residue

holds exactly (directed tests in ``tests/test_fleet.py``).  The window
replacement itself is a single atomic manifest commit
(:meth:`ProfileDatabase.compact_epochs`): a crash leaves either the
original epochs or the compacted window, never both.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class RetentionPolicy:
    """Downsampling/retention settings for a fleet store."""

    #: newest epochs kept at full resolution (never compacted).
    keep_full: int = 8
    #: aligned window size merged into one epoch once old enough.
    window: int = 4
    #: counts in compacted windows are divided by this (1 = lossless).
    count_divisor: int = 1

    def __post_init__(self):
        if self.keep_full < 0 or self.window < 1 or self.count_divisor < 1:
            raise ValueError("invalid retention policy %r" % (self,))

    @classmethod
    def parse(cls, spec):
        """``"K:W:D"`` (or ``"K:W"``, or ``"K"``) -> RetentionPolicy."""
        parts = [int(p) for p in str(spec).split(":")]
        if not 1 <= len(parts) <= 3:
            raise ValueError("retention spec must be K[:W[:D]], got %r"
                             % (spec,))
        defaults = [cls.keep_full, cls.window, cls.count_divisor]
        keep_full, window, divisor = parts + defaults[len(parts):]
        return cls(keep_full=keep_full, window=window,
                   count_divisor=divisor)

    def spec(self):
        return "%d:%d:%d" % (self.keep_full, self.window,
                             self.count_divisor)


def compactable_windows(policy, epochs):
    """Window starts whose every epoch is old enough to compact.

    A window ``[ws, ws + window)`` qualifies only when it lies entirely
    below the full-resolution horizon (``newest - keep_full``), so a
    window is compacted exactly once, after it can no longer grow.
    """
    if not epochs:
        return []
    horizon = max(epochs) - policy.keep_full + 1
    starts = []
    for epoch in epochs:
        start = epoch - epoch % policy.window
        if start + policy.window <= horizon and start not in starts:
            starts.append(start)
    return sorted(starts)


def downsample(counts, divisor):
    """Divide every count by *divisor*; return (kept, residue).

    Entries that round down to zero are dropped from the map -- their
    whole count lands in the residue, exactly like the fractional part
    of surviving entries.  ``divisor == 1`` is the identity (residue 0).
    """
    if divisor == 1:
        return dict(counts), 0
    kept = {}
    residue = 0
    for offset in sorted(counts):
        count = counts[offset]
        quotient, remainder = divmod(count, divisor)
        if quotient:
            kept[offset] = quotient * divisor
        else:
            remainder = count
        residue += remainder
    return kept, residue


def compact(store, policy):
    """Apply *policy* to every shard of *store*; return a report.

    Deterministic and idempotent: each shard compacts independently
    (its windows derive from its own committed epochs, its residue
    lands in its own ledger, its replacement is its own atomic
    manifest commit), windows are processed in ascending order, each
    exactly once (the shard ledger's ``compacted_windows`` marks
    finished windows, committed atomically with the replacement).
    """
    report = {"windows": [], "epochs_removed": 0, "residue": 0,
              "pre_samples": 0, "post_samples": 0}
    for shard in store.shards:
        _compact_shard(shard, policy, report)
    return report


def _compact_shard(shard, policy, report):
    """Compact one shard in place, folding into *report*."""
    epochs = shard.db.epochs()
    done = set(shard.ledger["compacted_windows"])
    for start in compactable_windows(policy, epochs):
        if start in done:
            continue
        window = [epoch for epoch in epochs
                  if start <= epoch < start + policy.window]
        merged = {}
        periods = {}
        pre_total = 0
        for epoch in window:
            for image, event, by_offset, period in shard.db.load_all(
                    epoch):
                dest = merged.setdefault(image, {}).setdefault(event, {})
                for offset, count in by_offset.items():
                    dest[offset] = dest.get(offset, 0) + count
                    pre_total += count
                periods[event] = max(period, periods.get(event, 0))
        residue = 0
        for image in merged:
            for event in merged[image]:
                kept, lost = downsample(merged[image][event],
                                        policy.count_divisor)
                merged[image][event] = kept
                residue += lost
        shard.ledger["compactions"] += 1
        shard.ledger["downsample_residue"] += residue
        shard.ledger["compacted_windows"] = sorted(done | {start})
        with shard.obs.timeit("fleet.compact_s"):
            shard.db.compact_epochs(window, merged, periods, start,
                                    meta=shard.ledger)
        shard.obs.counter("fleet.compactions").inc()
        shard.obs.counter("fleet.residue_samples").inc(residue)
        done.add(start)
        report["windows"].append({
            "shard": shard.index,
            "start": start, "epochs": window, "residue": residue,
            "pre_samples": pre_total,
            "post_samples": pre_total - residue})
        report["epochs_removed"] += len(window) - 1
        report["residue"] += residue
        report["pre_samples"] += pre_total
        report["post_samples"] += pre_total - residue
