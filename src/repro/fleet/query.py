"""Epoch queries over a fleet store: top, movers, timeseries, regress.

The query schema is designed for the consumers ROADMAP item 3 and the
PGO papers need: everything is expressed as *CPU share* (a procedure's
fraction of the fleet's samples in an epoch range), and every share
comparison carries a significance bound derived from the paper's
frequency-estimate error machinery -- a sampled count of ``n`` has
standard error ~``sqrt(n)`` (section 6.1's square-root error bars), so
a share ``p = n / T`` carries error ``sqrt(n) / T`` and the difference
of two shares is significant only beyond
``z * sqrt(n_a / T_a^2 + n_b / T_b^2)``.  ``movers`` reports the bound
next to every delta; ``regress`` exits nonzero only on increases that
clear it -- the primitive the CI fleet gate consumes.
"""

import bisect
import json

from repro.cpu.events import EventType

#: Query/baseline JSON schema version.
QUERY_SCHEMA = 1

#: Default two-sided 95% z-score for significance bounds.
DEFAULT_Z = 1.96


def parse_epochs(spec, available):
    """Parse an epoch-range argument against the store's epochs.

    ``"2..5"`` -> epochs 2-5 inclusive; ``"3"`` -> epoch 3; ``"all"``
    or None -> every committed epoch.  Only epochs that actually exist
    are returned (retention may have compacted interior ids away).
    """
    available = sorted(available)
    if spec is None or spec == "all":
        return available
    spec = str(spec)
    if ".." in spec:
        lo_s, hi_s = spec.split("..", 1)
        lo, hi = int(lo_s), int(hi_s)
    else:
        lo = hi = int(spec)
    if lo > hi:
        raise ValueError("empty epoch range %r" % (spec,))
    return [epoch for epoch in available if lo <= epoch <= hi]


class SymbolIndex:
    """Maps (image, offset) -> procedure name via shipped symbols."""

    def __init__(self, symbols):
        self._starts = {}
        self._procs = {}
        for image, procs in symbols.items():
            table = sorted(procs, key=lambda p: p[1])
            self._starts[image] = [p[1] for p in table]
            self._procs[image] = table

    def procedure(self, image, offset):
        """Procedure containing *offset*, or None if unmapped."""
        starts = self._starts.get(image)
        if not starts:
            return None
        index = bisect.bisect_right(starts, offset) - 1
        if index < 0:
            return None
        name, start, end = self._procs[image][index]
        return name if start <= offset < end else None


def share_error(samples, total):
    """Standard error of share ``samples / total`` (sqrt-count bars)."""
    if not total:
        return 0.0
    return (max(samples, 0) ** 0.5) / total


class FleetQuery:
    """Query engine over one :class:`~repro.fleet.store.FleetStore`."""

    def __init__(self, store, event=EventType.CYCLES):
        self.store = store
        self.event = EventType(event)
        self.symbols = SymbolIndex(store.symbols())

    def epochs(self, spec=None):
        return parse_epochs(spec, self.store.epochs())

    # -- aggregation -------------------------------------------------------

    def _totals(self, epochs, by="procedure"):
        """Aggregate *epochs* into ({key: samples}, total).

        Keys are ``image`` names or ``image:procedure`` labels; samples
        with no covering procedure fall into ``image:?``.
        """
        totals = {}
        grand = 0
        for epoch in sorted(epochs):
            for image, event, counts, _ in self.store.load_all(epoch):
                if event != self.event:
                    continue
                for offset, count in counts.items():
                    if by == "image":
                        key = image
                    else:
                        proc = self.symbols.procedure(image, offset)
                        key = "%s:%s" % (image, proc or "?")
                    totals[key] = totals.get(key, 0) + count
                    grand += count
        return totals, grand

    # -- queries -----------------------------------------------------------

    def top(self, epochs=None, by="procedure", limit=None):
        """Fleet-wide hottest images/procedures for an epoch range."""
        epochs = self.epochs(epochs) if not isinstance(epochs, list) \
            else epochs
        totals, grand = self._totals(epochs, by=by)
        rows = [{
            "name": name,
            "samples": samples,
            "share": samples / grand if grand else 0.0,
        } for name, samples in sorted(totals.items(),
                                      key=lambda kv: (-kv[1], kv[0]))]
        if limit:
            rows = rows[:limit]
        return {"schema": QUERY_SCHEMA, "query": "top", "by": by,
                "event": str(self.event), "epochs": epochs,
                "total_samples": grand, "rows": rows}

    def movers(self, base_epochs, epochs, by="procedure", z=DEFAULT_Z,
               min_share_delta=0.0, limit=None):
        """Procedures whose CPU share moved most between two ranges.

        Every row carries the share in both ranges, the delta, and the
        significance bound; ``significant`` is True when the absolute
        delta clears both the sampling-error bound and the caller's
        *min_share_delta* floor.
        """
        base_epochs = self.epochs(base_epochs) \
            if not isinstance(base_epochs, list) else base_epochs
        epochs = self.epochs(epochs) if not isinstance(epochs, list) \
            else epochs
        base, base_total = self._totals(base_epochs, by=by)
        new, new_total = self._totals(epochs, by=by)
        rows = []
        for name in sorted(set(base) | set(new)):
            samples_a = base.get(name, 0)
            samples_b = new.get(name, 0)
            share_a = samples_a / base_total if base_total else 0.0
            share_b = samples_b / new_total if new_total else 0.0
            delta = share_b - share_a
            bound = z * (share_error(samples_a, base_total) ** 2
                         + share_error(samples_b, new_total) ** 2) ** 0.5
            rows.append({
                "name": name,
                "samples_base": samples_a,
                "samples_new": samples_b,
                "share_base": share_a,
                "share_new": share_b,
                "delta": delta,
                "bound": bound,
                "significant": (abs(delta) > bound
                                and abs(delta) >= min_share_delta),
            })
        rows.sort(key=lambda row: (-abs(row["delta"]), row["name"]))
        if limit:
            rows = rows[:limit]
        return {"schema": QUERY_SCHEMA, "query": "movers", "by": by,
                "event": str(self.event), "z": z,
                "min_share_delta": min_share_delta,
                "base_epochs": base_epochs, "epochs": epochs,
                "base_total": base_total, "new_total": new_total,
                "rows": rows}

    def timeseries(self, name=None, by="procedure", epochs=None):
        """Per-epoch share series, fleet-wide or for one name."""
        epochs = self.epochs(epochs) if not isinstance(epochs, list) \
            else epochs
        series = {}
        for epoch in epochs:
            totals, grand = self._totals([epoch], by=by)
            if name is None:
                rows = {key: {"samples": samples,
                              "share": samples / grand if grand else 0.0}
                        for key, samples in totals.items()}
            else:
                samples = totals.get(name, 0)
                rows = {name: {"samples": samples,
                               "share": samples / grand if grand
                               else 0.0}}
            series[epoch] = {"total_samples": grand, "rows": rows}
        return {"schema": QUERY_SCHEMA, "query": "timeseries", "by": by,
                "event": str(self.event), "name": name,
                "epochs": epochs, "series": series}

    # -- regression detection ----------------------------------------------

    def baseline(self, epochs=None, by="procedure"):
        """The committed-baseline form ``regress`` compares against."""
        epochs = self.epochs(epochs) if not isinstance(epochs, list) \
            else epochs
        totals, grand = self._totals(epochs, by=by)
        return {"schema": QUERY_SCHEMA, "kind": "fleet-baseline",
                "by": by, "event": str(self.event), "epochs": epochs,
                "total_samples": grand,
                "samples": dict(sorted(totals.items()))}

    def regress(self, epochs=None, base_epochs=None, baseline=None,
                by="procedure", z=DEFAULT_Z, min_share_delta=0.005):
        """Detect share regressions; the CI primitive.

        Compares *epochs* against either *base_epochs* (two ranges of
        the same store) or a committed *baseline* dict (see
        :meth:`baseline`).  A regression is a name whose share
        *increased* beyond both the sampling-error bound and
        *min_share_delta*.  Returns the movers-style report plus the
        regression subset; callers exit nonzero when ``regressions``
        is non-empty.
        """
        if baseline is not None:
            base = dict(baseline["samples"])
            base_total = baseline["total_samples"]
            by = baseline.get("by", by)
            epochs = self.epochs(epochs) \
                if not isinstance(epochs, list) else epochs
            new, new_total = self._totals(epochs, by=by)
            rows = []
            for name in sorted(set(base) | set(new)):
                samples_a = base.get(name, 0)
                samples_b = new.get(name, 0)
                share_a = samples_a / base_total if base_total else 0.0
                share_b = samples_b / new_total if new_total else 0.0
                delta = share_b - share_a
                bound = z * (share_error(samples_a, base_total) ** 2
                             + share_error(samples_b,
                                           new_total) ** 2) ** 0.5
                rows.append({
                    "name": name, "samples_base": samples_a,
                    "samples_new": samples_b, "share_base": share_a,
                    "share_new": share_b, "delta": delta,
                    "bound": bound,
                    "significant": (abs(delta) > bound
                                    and abs(delta) >= min_share_delta),
                })
            rows.sort(key=lambda row: (-abs(row["delta"]), row["name"]))
            report = {"schema": QUERY_SCHEMA, "query": "regress",
                      "by": by, "event": str(self.event), "z": z,
                      "min_share_delta": min_share_delta,
                      "base": "baseline-file", "epochs": epochs,
                      "base_total": base_total, "new_total": new_total,
                      "rows": rows}
        else:
            report = self.movers(base_epochs, epochs, by=by, z=z,
                                 min_share_delta=min_share_delta)
            report["query"] = "regress"
        report["regressions"] = [
            row for row in report["rows"]
            if row["significant"] and row["delta"] > 0]
        return report


def load_baseline(path):
    """Read a committed fleet baseline (see FleetQuery.baseline)."""
    with open(path) as handle:
        baseline = json.load(handle)
    if baseline.get("kind") != "fleet-baseline":
        raise ValueError("%s is not a fleet baseline file" % path)
    return baseline
