"""``dcpifleet`` -- run a simulated fleet and query its central store.

Subcommands::

    dcpifleet run        simulate N machines for E epochs into a store
    dcpifleet top        fleet-wide hot images/procedures
    dcpifleet movers     biggest CPU-share movers between epoch ranges
    dcpifleet timeseries per-epoch share series (text or JSON)
    dcpifleet regress    exit-nonzero regression gate (CI primitive)
    dcpifleet classes    fleet-wide per-request-class attribution
    dcpifleet verify     shard integrity + conservation audit (exit 1)

``regress`` exits 2 when any procedure's CPU share increased beyond
both the sampling-error significance bound and the configured floor;
CI runs it against a committed baseline (``--write-baseline``
regenerates one).  All output is deterministic for a given store.
"""

import argparse
import json
import sys

from repro.fleet.query import (DEFAULT_Z, FleetQuery, load_baseline)
from repro.fleet.store import FleetStore


def build_parser():
    parser = argparse.ArgumentParser(
        prog="dcpifleet",
        description="simulated fleet profiling: run machines, query the "
                    "central epoch store")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a fleet into a store")
    run.add_argument("--store", required=True, help="store directory")
    run.add_argument("--machines", type=int, default=3)
    run.add_argument("--epochs", type=int, default=3)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--epoch-instructions", type=int, default=24_000)
    run.add_argument("--workloads", default=None,
                     help="comma-separated traffic sources (default: "
                          "altavista,timesharing,dss round-robin)")
    run.add_argument("--retention", default=None, metavar="K[:W[:D]]",
                     help="keep K epochs full-res, compact aligned "
                          "W-windows, divide counts by D")
    run.add_argument("--json", dest="json_path", default=None,
                     metavar="FILE",
                     help="write the session report as JSON ('-' = "
                          "stdout)")
    run.add_argument("--no-check", dest="check", action="store_false",
                     help="skip the fleet-conservation invariant check")
    run.add_argument("--context", action="store_true",
                     help="thread the request-context dimension "
                          "(repro.ctx) through every machine and ship "
                          "each epoch's ledger with its delta")
    run.add_argument("--shards", type=int, default=1,
                     help="shard count for a newly created store "
                          "(default 1 = legacy single-directory "
                          "layout)")
    run.add_argument("--durable", action="store_true",
                     help="give every machine a local database + "
                          "drain journal (crash-recoverable daemons)")
    run.add_argument("--spool-capacity", type=int, default=8,
                     help="bounded unacked-delta spool per machine "
                          "(default 8)")

    def query_args(cmd, epochs_help="epoch range A..B, single epoch, "
                                    "or 'all' (default)"):
        cmd.add_argument("--store", required=True)
        cmd.add_argument("--event", default="cycles")
        cmd.add_argument("--by", default="procedure",
                         choices=["procedure", "image"])
        cmd.add_argument("--epochs", default=None, help=epochs_help)
        cmd.add_argument("--json", dest="as_json", action="store_true",
                         help="emit JSON instead of a table")

    top = sub.add_parser("top", help="fleet-wide hottest code")
    query_args(top)
    top.add_argument("--limit", type=int, default=20)

    movers = sub.add_parser(
        "movers", help="biggest share movers between two epoch ranges")
    query_args(movers, epochs_help="newer epoch range (A..B)")
    movers.add_argument("--base-epochs", required=True,
                        help="older epoch range to compare against")
    movers.add_argument("--z", type=float, default=DEFAULT_Z,
                        help="significance z-score (default %.2f)"
                             % DEFAULT_Z)
    movers.add_argument("--min-share-delta", type=float, default=0.0,
                        help="extra absolute-share floor for "
                             "significance")
    movers.add_argument("--limit", type=int, default=20)

    series = sub.add_parser(
        "timeseries", help="per-epoch share series")
    query_args(series)
    series.add_argument("--name", default=None,
                        help="restrict to one image:procedure label")

    regress = sub.add_parser(
        "regress", help="regression gate: exit 2 on significant share "
                        "increases")
    query_args(regress, epochs_help="epoch range under test")
    regress.add_argument("--base-epochs", default=None,
                         help="compare against these epochs of the "
                              "same store")
    regress.add_argument("--baseline", default=None, metavar="FILE",
                         help="compare against a committed baseline "
                              "file instead")
    regress.add_argument("--write-baseline", default=None,
                         metavar="FILE",
                         help="write the current ranges as a baseline "
                              "and exit")
    regress.add_argument("--z", type=float, default=DEFAULT_Z)
    regress.add_argument("--min-share-delta", type=float, default=0.005,
                         help="ignore share increases below this "
                              "(default 0.005)")

    classes = sub.add_parser(
        "classes", help="per-request-class attribution from shipped "
                        "context ledgers")
    classes.add_argument("--store", required=True)
    classes.add_argument("--epochs", default=None,
                         help="epoch range A..B, single epoch, or "
                              "'all' (default)")
    classes.add_argument("--limit", type=int, default=5,
                         help="culprit procedures per class")
    classes.add_argument("--json", dest="as_json", action="store_true",
                         help="emit JSON instead of a table")

    verify = sub.add_parser(
        "verify", help="re-validate every shard's committed profiles "
                       "and audit the store's conservation books")
    verify.add_argument("--store", required=True)
    verify.add_argument("--json", dest="as_json", action="store_true",
                        help="emit the full JSON report")
    return parser


def _share(value):
    return "%6.2f%%" % (value * 100.0)


def render_top(report, out, limit=None):
    out.write("fleet top (%s, epochs %s, %d samples)\n"
              % (report["event"], report["epochs"],
                 report["total_samples"]))
    out.write("%-44s %10s %8s\n" % ("name", "samples", "share"))
    for row in report["rows"][:limit]:
        out.write("%-44s %10d %s\n"
                  % (row["name"], row["samples"], _share(row["share"])))


def render_movers(report, out, limit=None):
    out.write("fleet movers (%s, %s -> %s, z=%.2f)\n"
              % (report["event"],
                 report.get("base_epochs", report.get("base")),
                 report["epochs"], report["z"]))
    out.write("%-44s %8s %8s %8s %8s %s\n"
              % ("name", "base", "new", "delta", "bound", "sig"))
    for row in report["rows"][:limit]:
        out.write("%-44s %s %s %+7.2f%% %7.2f%% %s\n"
                  % (row["name"], _share(row["share_base"]),
                     _share(row["share_new"]), row["delta"] * 100.0,
                     row["bound"] * 100.0,
                     "*" if row["significant"] else ""))


def render_timeseries(report, out):
    out.write("fleet timeseries (%s, by %s%s)\n"
              % (report["event"], report["by"],
                 ", name=%s" % report["name"] if report["name"] else ""))
    names = sorted({name
                    for point in report["series"].values()
                    for name in point["rows"]})
    for name in names:
        out.write("%s\n" % name)
        for epoch in report["epochs"]:
            point = report["series"][epoch]
            row = point["rows"].get(name)
            if row is None:
                continue
            out.write("  e%04d %10d %s\n"
                      % (epoch, row["samples"], _share(row["share"])))


def cmd_run(args, out):
    from repro.fleet.machine import (DEFAULT_WORKLOADS, FleetConfig,
                                     FleetSession)
    from repro.fleet.retention import RetentionPolicy

    workloads = DEFAULT_WORKLOADS
    if args.workloads:
        workloads = tuple(name.strip()
                          for name in args.workloads.split(",")
                          if name.strip())
    retention = (RetentionPolicy.parse(args.retention)
                 if args.retention else None)
    config = FleetConfig(
        machines=args.machines, epochs=args.epochs, workloads=workloads,
        seed=args.seed, epoch_instructions=args.epoch_instructions,
        retention=retention, context=args.context, shards=args.shards,
        durable=args.durable, spool_capacity=args.spool_capacity)
    store = FleetStore(args.store, shards=args.shards)
    result = FleetSession(config).run(store, check=args.check)
    report = result.report()
    if args.json_path == "-":
        json.dump(report, out, indent=2, sort_keys=True)
        out.write("\n")
    elif args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    stats = report["store"]
    out.write("fleet: %d machine(s) x %d epoch(s), %d deltas, "
              "%d samples -> %s (%d bytes)\n"
              % (args.machines, args.epochs, stats["deltas_applied"],
                 stats["stored_samples"], args.store,
                 stats["disk_bytes"]))
    for finding in result.findings:
        out.write("FINDING %s\n" % finding)
    return 0 if report["ok"] else 1


def cmd_top(args, out):
    query = FleetQuery(FleetStore(args.store), event=args.event)
    report = query.top(epochs=args.epochs, by=args.by,
                       limit=args.limit)
    if args.as_json:
        json.dump(report, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        render_top(report, out)
    return 0


def cmd_movers(args, out):
    query = FleetQuery(FleetStore(args.store), event=args.event)
    report = query.movers(args.base_epochs, args.epochs, by=args.by,
                          z=args.z,
                          min_share_delta=args.min_share_delta,
                          limit=args.limit)
    if args.as_json:
        json.dump(report, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        render_movers(report, out)
    return 0


def cmd_timeseries(args, out):
    query = FleetQuery(FleetStore(args.store), event=args.event)
    report = query.timeseries(name=args.name, by=args.by,
                              epochs=args.epochs)
    if args.as_json:
        json.dump(report, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        render_timeseries(report, out)
    return 0


def cmd_regress(args, out):
    query = FleetQuery(FleetStore(args.store), event=args.event)
    if args.write_baseline:
        baseline = query.baseline(epochs=args.epochs, by=args.by)
        with open(args.write_baseline, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        out.write("wrote baseline (%d samples, %d names) -> %s\n"
                  % (baseline["total_samples"],
                     len(baseline["samples"]), args.write_baseline))
        return 0
    if (args.baseline is None) == (args.base_epochs is None):
        out.write("regress needs exactly one of --baseline / "
                  "--base-epochs\n")
        return 1
    baseline = load_baseline(args.baseline) if args.baseline else None
    report = query.regress(
        epochs=args.epochs, base_epochs=args.base_epochs,
        baseline=baseline, by=args.by, z=args.z,
        min_share_delta=args.min_share_delta)
    if args.as_json:
        json.dump(report, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        render_movers(report, out, limit=20)
    regressions = report["regressions"]
    if regressions:
        out.write("\nREGRESSION: %d procedure(s) gained significant "
                  "CPU share:\n" % len(regressions))
        for row in regressions:
            out.write("  %-44s %s -> %s (+%.2f%% > bound %.2f%%)\n"
                      % (row["name"], _share(row["share_base"]),
                         _share(row["share_new"]), row["delta"] * 100.0,
                         row["bound"] * 100.0))
        return 2
    out.write("\nno significant share regressions\n")
    return 0


def cmd_classes(args, out):
    from repro.fleet.query import parse_epochs
    from repro.tools.dcpitrace import (_cycles_period, build_report,
                                       format_report)

    store = FleetStore(args.store)
    epochs = None
    if args.epochs not in (None, "all"):
        epochs = parse_epochs(args.epochs, store.epochs())
    merged = store.ctx_meta(epochs=epochs)
    if merged is None:
        out.write("no context ledgers in %s (run the fleet with "
                  "--context)\n" % args.store)
        return 1
    period = max(_cycles_period(shard.db) for shard in store.shards)
    report = build_report(merged, period=period, db=args.store,
                          limit=args.limit)
    if args.as_json:
        json.dump(report, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        out.write(format_report(report, title="dcpifleet classes"))
        out.write("\n")
    return 0


def cmd_verify(args, out):
    """Shard integrity + offline conservation audit over a store dir.

    Every shard database re-validates its committed profiles
    (corrupt payloads are quarantined with their declared samples
    accounted -- the PR 4 machinery), then the store's own books are
    audited: every ingested sample must still be stored, removed as
    downsample residue, or quarantined.  Exit 1 on any violation.
    """
    from repro.check.analysis_checks import check_fleet_conservation

    store = FleetStore(args.store)
    shard_reports = {}
    for index, verify in sorted(store.verify().items()):
        shard_reports["s%02d" % index] = verify
    stats = store.stats()
    findings = check_fleet_conservation(
        shipped=stats["samples_ingested"],
        stored=stats["stored_samples"],
        residue=stats["downsample_residue"],
        quarantined=stats["quarantined_samples"],
        label="store:%s" % args.store)
    report = {
        "schema": 1,
        "store": args.store,
        "shards": shard_reports,
        "stats": stats,
        "findings": [finding.to_dict() for finding in findings],
        "ok": not findings,
    }
    if args.as_json:
        json.dump(report, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        out.write("fleet verify %s: %d shard(s), %d epoch(s), "
                  "%d samples\n"
                  % (args.store, stats["shards"], stats["epochs"],
                     stats["stored_samples"]))
        for name, verify in sorted(shard_reports.items()):
            out.write("  %s: checked %d, quarantined %d "
                      "(%d samples in quarantine)\n"
                      % (name, verify["checked"],
                         verify["quarantined"],
                         verify["lost_samples"]))
        for finding in findings:
            out.write("FINDING %s\n" % finding)
        out.write("conservation %s\n"
                  % ("ok" if not findings else "VIOLATED"))
    return 0 if not findings else 1


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    handler = {
        "run": cmd_run,
        "top": cmd_top,
        "movers": cmd_movers,
        "timeseries": cmd_timeseries,
        "regress": cmd_regress,
        "classes": cmd_classes,
        "verify": cmd_verify,
    }[args.command]
    return handler(args, out)


if __name__ == "__main__":
    sys.exit(main())
