"""Per-machine fleet daemons and the simulated fleet itself.

A :class:`FleetMachine` is one machine of the fleet: a simulated
:class:`~repro.cpu.machine.Machine` running a traffic-source workload
(AltaVista/timesharing/DSS by default) under the full collection stack
-- driver hash tables, daemon drains -- exactly like a
:class:`~repro.collect.session.ProfileSession`, except that instead of
merging into a local database it closes an epoch after every
``epoch_instructions`` and ships the epoch's samples upstream as a
:class:`~repro.fleet.transport.Delta`.  Traffic is continuous: when the
workload's processes finish, the traffic source respawns them (a new
loadmap generation), so every epoch carries samples.

Resilience (PR 9): a *durable* machine keeps a local
:class:`~repro.collect.database.ProfileDatabase` + write-ahead
:class:`~repro.collect.journal.DrainJournal` under the store's
``machines/<id>`` directory.  Its daemon can die mid-epoch
(``fleet.machine.run``) or between closing an epoch and shipping it
(``fleet.machine.ship``) and recover via
:meth:`~repro.collect.daemon.Daemon.recover` -- journal replay plus
in-flight redrain -- without losing a sample; closed epochs stay in
the local database until the store acknowledges them, so a restarted
machine re-extracts and re-ships unacked epochs (the store's
idempotent ``(machine, epoch, batch)`` dedupe absorbs replays).
Shipping rides a bounded :class:`~repro.fleet.transport.ShipSpool`
with deterministic seeded-jitter exponential backoff on timeouts and
exact drop-oldest overflow accounting.

:class:`FleetSession` stands up N machines with deterministic
per-machine seeds, runs them for E epochs, ships every delta through
one :class:`~repro.fleet.transport.DeltaTransport` into one (possibly
sharded) :class:`~repro.fleet.store.FleetStore`, reopening the store
if its writer crashes mid-ingest, and (optionally) applies the
retention policy as epochs age out.  Runs are reproducible end to end:
same config, same store bytes, same query output.
"""

import os
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.collect.daemon import Daemon
from repro.collect.driver import Driver
from repro.collect.session import SessionConfig
from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType
from repro.cpu.machine import Machine
from repro.faults.injector import (DROP, FLEET_ACK, FLEET_MACHINE_CRASH,
                                   FLEET_PRESHIP_CRASH, InjectedCrash,
                                   NULL_INJECTOR)
from repro.fleet.retention import RetentionPolicy, compact
from repro.fleet.store import FleetStore
from repro.fleet.transport import (DEFAULT_SPOOL_CAPACITY, Delta,
                                   DeltaTransport, ShipSpool,
                                   ShipTimeoutError)
from repro.obs import NULL_OBS

#: Default traffic sources: the paper's multi-process server workloads.
DEFAULT_WORKLOADS = ("altavista", "timesharing", "dss")

#: Deterministic per-machine seed spacing (any odd constant works; a
#: prime keeps seed streams visibly unrelated across machines).
SEED_STRIDE = 101

#: Post-session spool drain: bounded re-ship rounds before anything
#: still unacked is abandoned with exact loss accounting.
FINAL_SHIP_ROUNDS = 6

#: Store reopen attempts after an injected mid-ingest writer crash.
MAX_STORE_RECOVERIES = 4


@dataclass
class FleetConfig:
    """Settings for one simulated fleet session."""

    machines: int = 3
    epochs: int = 3
    workloads: Tuple[str, ...] = DEFAULT_WORKLOADS
    seed: int = 1
    #: instruction budget per machine per epoch.
    epoch_instructions: int = 24_000
    #: instructions between daemon drains within an epoch.
    drain_interval: int = 6_000
    mode: str = "default"
    cycles_period: tuple = (240, 256)
    event_period: int = 64
    #: fault plan applied to the fleet pipeline (fleet.* points); the
    #: machines' own drain-level chaos is PR 4's dcpichaos territory.
    faults: Optional[object] = None
    #: retention policy applied after every fleet epoch (None = keep
    #: everything at full resolution).
    retention: Optional[RetentionPolicy] = None
    #: thread the request-context dimension (repro.ctx) through every
    #: machine and ship each epoch's ledger inside its Delta, so the
    #: store can answer per-request-class queries fleet-wide.
    context: bool = False
    #: driver-side context-table capacity when *context* is on.
    ctx_slots: int = 64
    #: shard count for a store created by this session (1 = legacy
    #: single-directory layout).
    shards: int = 1
    #: give every machine a local database + drain journal so it can
    #: crash and recover mid-epoch (fleet.machine.* fault points only
    #: arm when durable).
    durable: bool = False
    #: bounded unacked-delta spool capacity per machine.
    spool_capacity: int = DEFAULT_SPOOL_CAPACITY

    def machine_seed(self, index):
        return self.seed + SEED_STRIDE * index

    def machine_workload(self, index):
        return self.workloads[index % len(self.workloads)]


class FleetMachine:
    """One machine: workload + collection stack + delta extraction."""

    def __init__(self, machine_id, workload_name, seed,
                 mode="default", cycles_period=(240, 256),
                 event_period=64, drain_interval=6_000, context=False,
                 ctx_slots=64, obs=None, durable_root=None,
                 faults=None, spool_capacity=DEFAULT_SPOOL_CAPACITY):
        from repro.ctx import ContextLedger
        from repro.workloads.registry import get_workload

        self.machine_id = machine_id
        self.workload_name = workload_name
        self.seed = seed
        self.drain_interval = drain_interval
        self.obs = obs or NULL_OBS
        self.faults = faults or NULL_INJECTOR
        self.context = context
        self.workload = get_workload(workload_name)
        session_config = SessionConfig(
            mode=mode, seed=seed, cycles_period=cycles_period,
            event_period=event_period, context=context,
            ctx_slots=ctx_slots)
        self.machine = Machine(
            MachineConfig(num_cpus=self.workload.num_cpus), seed=seed)
        self.driver = Driver(self.workload.num_cpus,
                             session_config.make_driver_config())
        self.driver.install(self.machine)
        periods = {EventType.CYCLES: sum(cycles_period) / 2.0}
        for event in (EventType.IMISS, EventType.DMISS,
                      EventType.BRANCHMP, EventType.DTBMISS,
                      EventType.ITBMISS):
            periods[event] = float(event_period)
        self.periods = periods
        self.database = None
        self.journal = None
        if durable_root is not None:
            from repro.collect.database import ProfileDatabase
            from repro.collect.journal import DrainJournal
            self.database = ProfileDatabase(os.fspath(durable_root))
            self.journal = DrainJournal(self.database.journal_path())
            self.journal.truncate()
        self.daemon = Daemon(self.machine.loader, periods=periods,
                             journal=self.journal,
                             obs=self.obs,
                             ctx=ContextLedger() if context else None)
        self.workload.setup(self.machine)
        #: bounded unacked-delta outbox, seeded per machine so the
        #: backoff jitter is deterministic fleet-wide.
        self.spool = ShipSpool(capacity=spool_capacity, seed=seed)
        #: loadmap generation: bumped every traffic respawn.
        self.generation = 1
        self._symbols_shipped_gen = 0
        self.batch = 0
        self.instructions = 0
        self.shipped_samples = 0
        self.respawns = 0
        self.recoveries = 0
        self._epoch_ran = 0

    def _crashes_armed(self):
        """Crash faults only make sense on a durable machine."""
        return self.database is not None and self.faults.enabled

    def _symbols(self):
        """Offset-relative procedure tables of every loaded image."""
        symbols = {}
        for image in self.machine.loader.images:
            symbols[image.name] = sorted(
                (proc.name, proc.start - image.base,
                 proc.end - image.base)
                for proc in image.procedures)
        return symbols

    def _respawn(self):
        """The traffic source: fresh processes, new loadmap generation."""
        self.workload.setup(self.machine)
        self.generation += 1
        self.respawns += 1

    def run_epoch(self, instructions):
        """Run one epoch's worth of traffic; return its Delta.

        A durable machine survives injected daemon crashes here: the
        crash is caught, the daemon is rebuilt from its checkpoint +
        journal (:meth:`_recover`), the driver's in-flight batches are
        redrained, and the epoch resumes where the traffic left off.
        """
        self._epoch_ran = 0
        while True:
            try:
                self._run_traffic(instructions)
                return self._close_epoch()
            except InjectedCrash:
                self._recover()

    def _run_traffic(self, instructions):
        """The epoch's traffic loop (resumable across crashes)."""
        idle_streak = 0
        while self._epoch_ran < instructions:
            chunk = min(self.drain_interval,
                        instructions - self._epoch_ran)
            ran = self.machine.run(max_instructions=chunk)
            self._epoch_ran += ran
            self.instructions += ran
            if self._crashes_armed():
                # The daemon dying between two drain chunks: the
                # machine and driver (kernel side) survive; pinned
                # batches and the journal carry the samples across.
                self.faults.check(FLEET_MACHINE_CRASH)
            self.daemon.drain(self.driver)
            self.driver.rotate_mux()
            for proc in self.machine.processes:
                if proc.exited:
                    self.daemon.reap(proc.pid)
            if ran == 0:
                idle_streak += 1
                if idle_streak > 1:
                    # A traffic source that produces no work even after
                    # a respawn: ship what we have rather than spin.
                    break
                self._respawn()
            else:
                idle_streak = 0

    def _close_epoch(self):
        """Checkpoint (durable), extract, and wrap the epoch's Delta."""
        if self.daemon.ctx is not None:
            # Fold per-process request totals (keyed, idempotent) into
            # the epoch's ledger before it closes, exactly as a local
            # ProfileSession does at shutdown.
            from repro.collect.session import ProfileSession
            ProfileSession._fold_requests(self.machine, self.daemon)
        if self.database is not None:
            # Make the epoch durable *before* shipping: a pre-ship
            # crash recovers the full epoch from the local database
            # and redoes the close (same delta id -> dedupe-safe).
            self.daemon.merge_to_disk(self.database)
            if self._crashes_armed():
                self.faults.check(FLEET_PRESHIP_CRASH)
        epoch, profiles, periods, ctx_meta = self.daemon.extract_delta()
        if self.database is not None:
            # Commit the advanced-epoch watermarks so a later crash
            # recovers into the new epoch instead of resurrecting the
            # closed one (which now lives on as an unacked delta).
            self.database.update_checkpoint(self.daemon._checkpoint_meta())
        symbols = None
        if self.generation > self._symbols_shipped_gen:
            symbols = self._symbols()
            self._symbols_shipped_gen = self.generation
        # One delta per epoch: the batch number is derived, not
        # counted, so a crash-and-redo closes on the same delta id.
        self.batch = epoch + 1
        delta = Delta(
            machine_id=self.machine_id,
            epoch=epoch,
            batch=self.batch,
            generation=self.generation,
            workload=self.workload_name,
            seed=self.seed,
            profiles=profiles,
            periods=periods,
            symbols=symbols,
            machine_lost=(self.daemon.lost_samples
                          + sum(cpu.dropped
                                for cpu in self.driver.cpus)),
            ctx=ctx_meta)
        self.shipped_samples += delta.total_samples()
        return delta

    # -- crash recovery ----------------------------------------------------

    def _recover(self):
        """Rebuild the daemon after an injected crash (durable only)."""
        from repro.ctx import ContextLedger

        self.recoveries += 1
        self.obs.counter("fleet.machine_recoveries").inc()
        ctx_seed = None
        if self.context:
            ctx_seed = ContextLedger()
            if self.driver.ctx_table is not None:
                ctx_seed.absorb_table(self.driver.ctx_table)
        self.daemon = Daemon.recover(
            self.machine.loader, self.database, journal=self.journal,
            periods=self.periods, obs=self.obs, ctx=ctx_seed)
        self.daemon.redrain_inflight(self.driver)
        self._respool_unacked()

    def _delta_from_database(self, epoch):
        """Rebuild a closed epoch's delta from the local database.

        Symbols and the context ledger are not re-derived for a
        rebuilt delta: the original shipment (if any copy got through)
        carried them, and the store's dedupe keys on the delta id
        alone.  ``shipped_samples`` is *not* recounted -- the epoch
        was counted when first extracted.
        """
        profiles = {}
        for image, event, counts, _period in self.database.load_all(
                epoch):
            profiles.setdefault(image, {})[event] = dict(counts)
        return Delta(
            machine_id=self.machine_id,
            epoch=epoch,
            batch=epoch + 1,
            generation=self.generation,
            workload=self.workload_name,
            seed=self.seed,
            profiles=profiles,
            periods=dict(self.periods),
            machine_lost=(self.daemon.lost_samples
                          + sum(cpu.dropped
                                for cpu in self.driver.cpus)))

    def _respool_unacked(self):
        """Re-spool closed-but-unacked epochs after a restart.

        Epochs still present in the local database below the current
        one were extracted but never acknowledged (acks drop them);
        "resume shipping from the journal" means re-extracting them as
        deltas.  Dedupe-by-id makes any overlap with a surviving spool
        entry or an already-applied shipment harmless.
        """
        spooled = {entry.delta.delta_id
                   for entry in self.spool.pending()}
        for epoch in self.database.epochs():
            if epoch >= self.daemon.epoch:
                continue
            delta = self._delta_from_database(epoch)
            if delta.delta_id not in spooled:
                self.spool.offer(delta)

    def on_acked(self, delta):
        """The store acknowledged *delta*: its epoch is off this box."""
        if self.database is not None and delta.epoch in \
                self.database.epochs():
            self.database.drop_epoch(delta.epoch)


@dataclass
class FleetResult:
    """Everything one fleet session produced (JSON-serializable)."""

    config: FleetConfig
    store: FleetStore
    machines: list
    transport_stats: dict
    retention_reports: list = field(default_factory=list)
    findings: list = field(default_factory=list)
    resilience: dict = field(default_factory=dict)

    def shipped_samples(self):
        return sum(m["shipped_samples"] for m in self.machines)

    def report(self):
        """The machine-readable session report (dcpifleet --json)."""
        return {
            "schema": 1,
            "config": {
                "machines": self.config.machines,
                "epochs": self.config.epochs,
                "workloads": list(self.config.workloads),
                "seed": self.config.seed,
                "epoch_instructions": self.config.epoch_instructions,
                "retention": (self.config.retention.spec()
                              if self.config.retention else None),
                "context": self.config.context,
                "shards": self.config.shards,
                "durable": self.config.durable,
                "spool_capacity": self.config.spool_capacity,
            },
            "machines": self.machines,
            "transport": dict(self.transport_stats),
            "store": self.store.stats(),
            "retention": self.retention_reports,
            "resilience": dict(self.resilience),
            "shipped_samples": self.shipped_samples(),
            "findings": [f.to_dict() for f in self.findings],
            "ok": not self.findings,
        }


class FleetSession:
    """Run a whole simulated fleet into one store."""

    def __init__(self, config=None, obs=None):
        self.config = config or FleetConfig()
        self.obs = obs or NULL_OBS
        self._store_recoveries = 0
        self._acks_lost = 0

    def run(self, store, check=True):
        """Simulate the fleet; return a :class:`FleetResult`.

        *store* is a :class:`FleetStore` or a directory path.  With
        *check* (the default), the fleet-conservation invariant --
        stored samples + transit losses + spool drops + downsample
        residue + quarantined equals the sum of per-machine shipped
        samples -- is verified via
        :func:`repro.check.analysis_checks.check_fleet_conservation`
        and any violation lands in ``result.findings``.
        """
        from repro.check.analysis_checks import check_fleet_conservation

        config = self.config
        if not isinstance(store, FleetStore):
            store = FleetStore(store, obs=self.obs,
                               shards=config.shards)
        faults = (config.faults.build()
                  if getattr(config.faults, "build", None)
                  else (config.faults or NULL_INJECTOR))
        transport = DeltaTransport(faults=faults, obs=self.obs)
        machines = [
            FleetMachine(
                "m%02d" % index,
                config.machine_workload(index),
                config.machine_seed(index),
                mode=config.mode,
                cycles_period=config.cycles_period,
                event_period=config.event_period,
                drain_interval=config.drain_interval,
                context=config.context,
                ctx_slots=config.ctx_slots,
                obs=self.obs,
                durable_root=(os.path.join(store.root, "machines",
                                           "m%02d" % index)
                              if config.durable else None),
                faults=faults,
                spool_capacity=config.spool_capacity)
            for index in range(config.machines)
        ]
        retention_reports = []
        for _epoch in range(config.epochs):
            for machine in machines:
                delta = machine.run_epoch(config.epoch_instructions)
                for victim in machine.spool.offer(delta):
                    # Overflow drop is terminal (and accounted): also
                    # release the epoch from the machine's local
                    # database so a restart cannot re-spool it.
                    self.obs.counter(
                        "fleet.spool_dropped_samples").inc(
                        victim.total_samples())
                    machine.on_acked(victim)
                store = self._ship_spooled(machine, transport, store,
                                           faults)
            if config.retention is not None:
                report = compact(store, config.retention)
                if report["windows"]:
                    retention_reports.append(report)
        store = self._drain_spools(machines, transport, store, faults)
        for delivery in transport.flush():
            store = self._deliver(store, delivery, faults)[0]
        machine_rows = [{
            "machine": machine.machine_id,
            "workload": machine.workload_name,
            "seed": machine.seed,
            "instructions": machine.instructions,
            "shipped_samples": machine.shipped_samples,
            "respawns": machine.respawns,
            "deltas": machine.batch,
            "recoveries": machine.recoveries,
            "spool": machine.spool.to_dict(),
        } for machine in machines]
        spool_dropped = sum(machine.spool.dropped_samples
                            for machine in machines)
        resilience = {
            "spool_dropped_deltas": sum(machine.spool.dropped_deltas
                                        for machine in machines),
            "spool_dropped_samples": spool_dropped,
            "ship_retries": sum(machine.spool.retries
                                for machine in machines),
            "backoff_ms": round(sum(machine.spool.backoff_ms
                                    for machine in machines), 3),
            "machine_recoveries": sum(machine.recoveries
                                      for machine in machines),
            "store_recoveries": self._store_recoveries,
            "acks_lost": self._acks_lost,
        }
        findings = []
        if check:
            findings = check_fleet_conservation(
                shipped=sum(row["shipped_samples"]
                            for row in machine_rows),
                stored=store.total_samples(),
                transit_lost=transport.stats.lost_samples,
                residue=store.downsample_residue(),
                quarantined=store.quarantined_samples(),
                spool_dropped=spool_dropped,
                label="fleet/%dx%d" % (config.machines, config.epochs))
        return FleetResult(
            config=config, store=store, machines=machine_rows,
            transport_stats=transport.stats.to_dict(),
            retention_reports=retention_reports, findings=findings,
            resilience=resilience)

    # -- shipping ----------------------------------------------------------

    def _deliver(self, store, delivery, faults):
        """Ingest one delivered delta, surviving writer crashes.

        An injected ``fleet.store.ingest`` crash kills the writer
        before the atomic commit; the session reopens the store (the
        staged in-memory ledger mutation dies with the process) and
        retries the same delivery.  Returns ``(store, applied)``.
        """
        for _attempt in range(MAX_STORE_RECOVERIES + 1):
            try:
                return store, store.ingest(delivery, faults=faults)
            except InjectedCrash:
                self._store_recoveries += 1
                self.obs.counter("fleet.store_recoveries").inc()
                store = FleetStore(store.root, obs=self.obs,
                                   shards=store.num_shards,
                                   retry=store.retry)
        return store, store.ingest(delivery, faults=faults)

    def _ship_spooled(self, machine, transport, store, faults):
        """Attempt to ship everything in *machine*'s spool, in order.

        A retryable timeout stops this round (head-of-line: later
        entries wait behind the backoff); a lost ack leaves the entry
        spooled for an idempotent re-ship next round.  Returns the
        (possibly reopened) store.
        """
        for entry in machine.spool.pending():
            try:
                deliveries = transport.ship(entry.delta)
            except ShipTimeoutError:
                delay = machine.spool.backoff_for_retry(entry)
                self.obs.counter("fleet.ship_retries").inc()
                self.obs.counter("fleet.ship_backoff_ms").inc(
                    int(delay))
                break
            for delivery in deliveries:
                store, _applied = self._deliver(store, delivery, faults)
            if deliveries:
                machine.spool.mark_delivered(entry.delta.delta_id)
                spec = (faults.fires(FLEET_ACK)
                        if faults.enabled else None)
                if spec is not None and spec.action == DROP:
                    # The store applied the delta but the ack
                    # vanished: the sender keeps it spooled and
                    # re-ships; dedupe absorbs the replay.
                    self._acks_lost += 1
                    self.obs.counter("fleet.acks_lost").inc()
                    continue
            # Delivered-and-acked, or terminally dropped/delayed by
            # the transport (both accounted there): off the spool.
            machine.spool.ack(entry.delta.delta_id)
            machine.on_acked(entry.delta)
        return store

    def _drain_spools(self, machines, transport, store, faults):
        """Bounded end-of-session re-ship rounds, then abandon.

        Whatever is still unacked after :data:`FINAL_SHIP_ROUNDS`
        rounds is terminally dropped with its samples accounted in the
        spool (graceful degradation, never silent loss).
        """
        for _round in range(FINAL_SHIP_ROUNDS):
            if not any(len(machine.spool) for machine in machines):
                break
            for machine in machines:
                if len(machine.spool):
                    store = self._ship_spooled(machine, transport,
                                               store, faults)
        for machine in machines:
            for delta in machine.spool.abandon():
                self.obs.counter("fleet.spool_abandoned").inc()
                machine.on_acked(delta)
        return store
