"""Per-machine fleet daemons and the simulated fleet itself.

A :class:`FleetMachine` is one machine of the fleet: a simulated
:class:`~repro.cpu.machine.Machine` running a traffic-source workload
(AltaVista/timesharing/DSS by default) under the full collection stack
-- driver hash tables, daemon drains -- exactly like a
:class:`~repro.collect.session.ProfileSession`, except that instead of
merging into a local database it closes an epoch after every
``epoch_instructions`` and ships the epoch's samples upstream as a
:class:`~repro.fleet.transport.Delta`.  Traffic is continuous: when the
workload's processes finish, the traffic source respawns them (a new
loadmap generation), so every epoch carries samples.

:class:`FleetSession` stands up N machines with deterministic
per-machine seeds, runs them for E epochs, ships every delta through
one :class:`~repro.fleet.transport.DeltaTransport` into one
:class:`~repro.fleet.store.FleetStore`, and (optionally) applies the
retention policy as epochs age out.  Runs are reproducible end to end:
same config, same store bytes, same query output.
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.collect.daemon import Daemon
from repro.collect.driver import Driver
from repro.collect.session import SessionConfig
from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType
from repro.cpu.machine import Machine
from repro.faults.injector import NULL_INJECTOR
from repro.fleet.retention import RetentionPolicy, compact
from repro.fleet.store import FleetStore
from repro.fleet.transport import Delta, DeltaTransport
from repro.obs import NULL_OBS

#: Default traffic sources: the paper's multi-process server workloads.
DEFAULT_WORKLOADS = ("altavista", "timesharing", "dss")

#: Deterministic per-machine seed spacing (any odd constant works; a
#: prime keeps seed streams visibly unrelated across machines).
SEED_STRIDE = 101


@dataclass
class FleetConfig:
    """Settings for one simulated fleet session."""

    machines: int = 3
    epochs: int = 3
    workloads: Tuple[str, ...] = DEFAULT_WORKLOADS
    seed: int = 1
    #: instruction budget per machine per epoch.
    epoch_instructions: int = 24_000
    #: instructions between daemon drains within an epoch.
    drain_interval: int = 6_000
    mode: str = "default"
    cycles_period: tuple = (240, 256)
    event_period: int = 64
    #: fault plan applied to the fleet hop (fleet.ship point); the
    #: machines themselves run clean -- machine-side chaos is PR 4's
    #: dcpichaos territory.
    faults: Optional[object] = None
    #: retention policy applied after every fleet epoch (None = keep
    #: everything at full resolution).
    retention: Optional[RetentionPolicy] = None
    #: thread the request-context dimension (repro.ctx) through every
    #: machine and ship each epoch's ledger inside its Delta, so the
    #: store can answer per-request-class queries fleet-wide.
    context: bool = False
    #: driver-side context-table capacity when *context* is on.
    ctx_slots: int = 64

    def machine_seed(self, index):
        return self.seed + SEED_STRIDE * index

    def machine_workload(self, index):
        return self.workloads[index % len(self.workloads)]


class FleetMachine:
    """One machine: workload + collection stack + delta extraction."""

    def __init__(self, machine_id, workload_name, seed,
                 mode="default", cycles_period=(240, 256),
                 event_period=64, drain_interval=6_000, context=False,
                 ctx_slots=64, obs=None):
        from repro.ctx import ContextLedger
        from repro.workloads.registry import get_workload

        self.machine_id = machine_id
        self.workload_name = workload_name
        self.seed = seed
        self.drain_interval = drain_interval
        self.obs = obs or NULL_OBS
        self.workload = get_workload(workload_name)
        session_config = SessionConfig(
            mode=mode, seed=seed, cycles_period=cycles_period,
            event_period=event_period, context=context,
            ctx_slots=ctx_slots)
        self.machine = Machine(
            MachineConfig(num_cpus=self.workload.num_cpus), seed=seed)
        self.driver = Driver(self.workload.num_cpus,
                             session_config.make_driver_config())
        self.driver.install(self.machine)
        periods = {EventType.CYCLES: sum(cycles_period) / 2.0}
        for event in (EventType.IMISS, EventType.DMISS,
                      EventType.BRANCHMP, EventType.DTBMISS,
                      EventType.ITBMISS):
            periods[event] = float(event_period)
        self.daemon = Daemon(self.machine.loader, periods=periods,
                             ctx=ContextLedger() if context else None)
        self.workload.setup(self.machine)
        #: loadmap generation: bumped every traffic respawn.
        self.generation = 1
        self._symbols_shipped_gen = 0
        self.batch = 0
        self.instructions = 0
        self.shipped_samples = 0
        self.respawns = 0

    def _symbols(self):
        """Offset-relative procedure tables of every loaded image."""
        symbols = {}
        for image in self.machine.loader.images:
            symbols[image.name] = sorted(
                (proc.name, proc.start - image.base,
                 proc.end - image.base)
                for proc in image.procedures)
        return symbols

    def _respawn(self):
        """The traffic source: fresh processes, new loadmap generation."""
        self.workload.setup(self.machine)
        self.generation += 1
        self.respawns += 1

    def run_epoch(self, instructions):
        """Run one epoch's worth of traffic; return its Delta."""
        ran_total = 0
        idle_streak = 0
        while ran_total < instructions:
            chunk = min(self.drain_interval, instructions - ran_total)
            ran = self.machine.run(max_instructions=chunk)
            ran_total += ran
            self.daemon.drain(self.driver)
            self.driver.rotate_mux()
            for proc in self.machine.processes:
                if proc.exited:
                    self.daemon.reap(proc.pid)
            if ran == 0:
                idle_streak += 1
                if idle_streak > 1:
                    # A traffic source that produces no work even after
                    # a respawn: ship what we have rather than spin.
                    break
                self._respawn()
            else:
                idle_streak = 0
        self.instructions += ran_total
        if self.daemon.ctx is not None:
            # Fold per-process request totals (keyed, idempotent) into
            # the epoch's ledger before it closes, exactly as a local
            # ProfileSession does at shutdown.
            from repro.collect.session import ProfileSession
            ProfileSession._fold_requests(self.machine, self.daemon)
        epoch, profiles, periods, ctx_meta = self.daemon.extract_delta()
        symbols = None
        if self.generation > self._symbols_shipped_gen:
            symbols = self._symbols()
            self._symbols_shipped_gen = self.generation
        self.batch += 1
        delta = Delta(
            machine_id=self.machine_id,
            epoch=epoch,
            batch=self.batch,
            generation=self.generation,
            workload=self.workload_name,
            seed=self.seed,
            profiles=profiles,
            periods=periods,
            symbols=symbols,
            machine_lost=(self.daemon.lost_samples
                          + sum(cpu.dropped
                                for cpu in self.driver.cpus)),
            ctx=ctx_meta)
        self.shipped_samples += delta.total_samples()
        return delta


@dataclass
class FleetResult:
    """Everything one fleet session produced (JSON-serializable)."""

    config: FleetConfig
    store: FleetStore
    machines: list
    transport_stats: dict
    retention_reports: list = field(default_factory=list)
    findings: list = field(default_factory=list)

    def shipped_samples(self):
        return sum(m["shipped_samples"] for m in self.machines)

    def report(self):
        """The machine-readable session report (dcpifleet --json)."""
        return {
            "schema": 1,
            "config": {
                "machines": self.config.machines,
                "epochs": self.config.epochs,
                "workloads": list(self.config.workloads),
                "seed": self.config.seed,
                "epoch_instructions": self.config.epoch_instructions,
                "retention": (self.config.retention.spec()
                              if self.config.retention else None),
                "context": self.config.context,
            },
            "machines": self.machines,
            "transport": dict(self.transport_stats),
            "store": self.store.stats(),
            "retention": self.retention_reports,
            "shipped_samples": self.shipped_samples(),
            "findings": [f.to_dict() for f in self.findings],
            "ok": not self.findings,
        }


class FleetSession:
    """Run a whole simulated fleet into one store."""

    def __init__(self, config=None, obs=None):
        self.config = config or FleetConfig()
        self.obs = obs or NULL_OBS

    def run(self, store, check=True):
        """Simulate the fleet; return a :class:`FleetResult`.

        *store* is a :class:`FleetStore` or a directory path.  With
        *check* (the default), the fleet-conservation invariant --
        stored samples + transit losses + downsample residue equals the
        sum of per-machine shipped samples -- is verified via
        :func:`repro.check.analysis_checks.check_fleet_conservation`
        and any violation lands in ``result.findings``.
        """
        from repro.check.analysis_checks import check_fleet_conservation

        config = self.config
        if not isinstance(store, FleetStore):
            store = FleetStore(store, obs=self.obs)
        faults = (config.faults.build()
                  if getattr(config.faults, "build", None)
                  else (config.faults or NULL_INJECTOR))
        transport = DeltaTransport(faults=faults, obs=self.obs)
        machines = [
            FleetMachine(
                "m%02d" % index,
                config.machine_workload(index),
                config.machine_seed(index),
                mode=config.mode,
                cycles_period=config.cycles_period,
                event_period=config.event_period,
                drain_interval=config.drain_interval,
                context=config.context,
                ctx_slots=config.ctx_slots,
                obs=self.obs)
            for index in range(config.machines)
        ]
        retention_reports = []
        for _epoch in range(config.epochs):
            for machine in machines:
                delta = machine.run_epoch(config.epoch_instructions)
                for delivery in transport.ship(delta):
                    store.ingest(delivery)
            if config.retention is not None:
                report = compact(store, config.retention)
                if report["windows"]:
                    retention_reports.append(report)
        for delivery in transport.flush():
            store.ingest(delivery)
        machine_rows = [{
            "machine": machine.machine_id,
            "workload": machine.workload_name,
            "seed": machine.seed,
            "instructions": machine.instructions,
            "shipped_samples": machine.shipped_samples,
            "respawns": machine.respawns,
            "deltas": machine.batch,
        } for machine in machines]
        findings = []
        if check:
            findings = check_fleet_conservation(
                shipped=sum(row["shipped_samples"]
                            for row in machine_rows),
                stored=store.total_samples(),
                transit_lost=transport.stats.lost_samples,
                residue=store.ledger["downsample_residue"],
                quarantined=store.db.quarantined_samples(),
                label="fleet/%dx%d" % (config.machines, config.epochs))
        return FleetResult(
            config=config, store=store, machines=machine_rows,
            transport_stats=transport.stats.to_dict(),
            retention_reports=retention_reports, findings=findings)
