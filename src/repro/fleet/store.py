"""The central, append-only, epoch-aware, *sharded* fleet store.

``FleetStore`` promotes "one session, one database" to "many sources,
one store": per-machine daemons ship epoch deltas
(:mod:`repro.fleet.transport`) and the store merges them into
crash-safe :class:`~repro.collect.database.ProfileDatabase` shards
(v3: CRC trailers, shadow paging, atomic manifest), one epoch
directory per fleet epoch per shard.

Sharding: a store is split into ``shards`` independent
:class:`FleetShard` directories, each with its own database, manifest,
ledger, and advisory ingest lock.  A delta is routed by a stable hash
of its machine id (``zlib.crc32`` -- unsalted, identical across
processes), so every machine always lands on the same shard and the
per-shard dedupe ledger stays authoritative.  N writer processes
ingesting disjoint machines therefore contend on nothing.  The default
``shards=1`` keeps the exact legacy single-directory layout on disk.

Idempotent delivery: every applied delta id ``(machine, epoch, batch)``
is recorded in the owning shard's ledger committed *in the same atomic
manifest rename* as the delta's samples
(:meth:`ProfileDatabase.merge_epoch`), so a duplicate -- a transport
fault, a retry after a lost ack, or a replay after a crash between
merge and acknowledgment -- is recognized and dropped without double
counting.

Order independence: merging is a commutative integer sum over
``(epoch, image, event, offset)`` keys, so the merged counts -- and
their canonical encoded bytes -- are identical under any permutation
of delta arrivals *and any shard count* (property-tested in
``tests/test_fleet.py`` and ``tests/test_fleet_resilience.py``).

Writer contention is no longer fail-loud: a locked shard is retried on
a bounded, seeded-jitter exponential backoff schedule
(:class:`IngestRetry`); only an exhausted schedule raises
:class:`FleetStoreBusyError`.
"""

import contextlib
import json
import os
import random
import time
import zlib

try:
    import fcntl
except ImportError:  # non-POSIX: locking degrades to a no-op
    fcntl = None

from dataclasses import dataclass

from repro.collect.database import ProfileDatabase
from repro.collect.parallel import MergedProfiles
from repro.faults.injector import FLEET_STORE_INGEST, NULL_INJECTOR
from repro.obs import NULL_OBS

#: Ledger schema version (stored in each shard manifest's "fleet" key,
#: committed atomically with every ingest).
LEDGER_VERSION = 1

#: Lock file guarding each shard's single-writer ingest path.
INGEST_LOCK_NAME = "INGEST.lock"

#: Store-level layout descriptor (only written for sharded stores;
#: legacy single-shard stores have no extra file).
STORE_META_NAME = "STORE.json"

#: Real sleeping between lock attempts (injectable for tests; the
#: backoff *schedule* itself is pure and seeded).
_SLEEP = time.sleep


class FleetStoreBusyError(RuntimeError):
    """A shard's ingest lock stayed held through every retry.

    Each shard is single-writer (its ledger is read-modify-write
    around each atomic manifest commit); a concurrent writer backs off
    and retries on the :class:`IngestRetry` schedule and only fails
    loudly once the bounded attempt budget is exhausted.
    """


@dataclass(frozen=True)
class IngestRetry:
    """Bounded retry-with-backoff policy for shard lock contention.

    The schedule is a pure function of the policy (seeded jitter, no
    wall-clock input), so two runs with the same policy wait the same
    deterministic amounts -- the ``lint/unseeded-backoff`` rule exists
    to keep it that way.
    """

    #: total lock acquisition attempts (>= 1) before failing loudly.
    attempts: int = 8
    #: first backoff delay, milliseconds.
    base_ms: float = 2.0
    #: exponential backoff ceiling, milliseconds.
    cap_ms: float = 50.0
    #: jitter seed (schedule is deterministic per seed).
    seed: int = 0

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("retry policy needs >= 1 attempt")

    def backoff_schedule(self):
        """Delays (ms) slept between attempts: ``attempts - 1`` values.

        Exponential doubling from *base_ms*, capped at *cap_ms*, each
        scaled into ``[0.5, 1.0)`` of itself by a PRNG seeded with
        *seed* (decorrelates concurrent writers without wall-clock
        randomness).
        """
        rng = random.Random(self.seed)
        schedule = []
        for attempt in range(self.attempts - 1):
            delay = min(self.cap_ms, self.base_ms * (2 ** attempt))
            schedule.append(delay * (0.5 + 0.5 * rng.random()))
        return tuple(schedule)

    def budget_ms(self):
        """Worst-case total backoff (the effective lock timeout)."""
        return sum(self.backoff_schedule())


def _empty_ledger():
    return {
        "version": LEDGER_VERSION,
        #: delta id -> {machine, epoch, batch, samples, bytes}
        "applied": {},
        #: machine id -> {deltas, samples, lost (machine-side), workload}
        "machines": {},
        #: image name -> [[procedure, start offset, end offset], ...]
        "symbols": {},
        #: fleet epoch key ("%04d") -> merged request-context ledger
        #: meta for that epoch (repro.ctx), merged across machines.
        "ctx": {},
        "samples_ingested": 0,
        "bytes_ingested": 0,
        "duplicates_dropped": 0,
        "compactions": 0,
        "downsample_residue": 0,
        #: window-start epochs already compacted by retention.
        "compacted_windows": [],
        #: times a writer had to back off before winning the lock.
        "lock_retries": 0,
    }


class FleetShard:
    """One shard: a database + ledger + lock, single-writer-at-a-time."""

    def __init__(self, root, index=0, obs=None, retry=None):
        self.root = os.fspath(root)
        self.index = index
        self.obs = obs or NULL_OBS
        self.retry = retry or IngestRetry()
        self._sleep = _SLEEP
        self._refresh()

    def _refresh(self):
        """(Re)load the shard's manifest and ledger from disk.

        Called at open and again under the ingest lock: another
        process may have committed since this handle last looked, and
        applying against a stale manifest would silently overwrite its
        records (the lost-update race the lock exists to prevent).
        """
        self.db = ProfileDatabase(os.path.join(self.root, "db"))
        ledger = self.db.get_meta("fleet")
        if ledger is None:
            ledger = _empty_ledger()
        else:
            # Forward-fill keys added after the shard was created.
            for key, value in _empty_ledger().items():
                ledger.setdefault(key, value)
        self.ledger = ledger

    # -- locking -----------------------------------------------------------

    def _acquire_with_backoff(self, handle):
        """Take the shard lock, retrying on the seeded backoff schedule.

        Returns the number of retries it took.  Raises
        :class:`FleetStoreBusyError` only once the whole
        :class:`IngestRetry` schedule is exhausted.
        """
        schedule = self.retry.backoff_schedule()
        for attempt in range(self.retry.attempts):
            try:
                fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                if attempt >= len(schedule):
                    raise FleetStoreBusyError(
                        "fleet shard %s is busy: %s still held after "
                        "%d attempts (%.1fms backoff budget); each "
                        "shard is single-writer"
                        % (self.root, INGEST_LOCK_NAME,
                           self.retry.attempts,
                           self.retry.budget_ms())) from None
                self.obs.counter("fleet.ingest_lock_retries").inc()
                self._sleep(schedule[attempt] / 1000.0)
            else:
                return attempt
        raise AssertionError("unreachable")  # pragma: no cover

    @contextlib.contextmanager
    def _ingest_lock(self):
        """Advisory exclusive lock around one ingest (retry + timeout).

        ``flock`` on ``<shard>/INGEST.lock`` -- non-blocking attempts
        on a bounded, seeded-jitter backoff schedule, held only for
        the ingest's read-modify-write window, released (and the
        descriptor closed) on the way out even when the merge raises.
        On platforms without ``fcntl`` the lock degrades to a no-op,
        matching the documented single-writer-per-shard assumption.
        """
        if fcntl is None:
            yield 0
            return
        os.makedirs(self.root, exist_ok=True)
        handle = open(os.path.join(self.root, INGEST_LOCK_NAME), "a+")
        try:
            yield self._acquire_with_backoff(handle)
        finally:
            handle.close()

    # -- ingest ------------------------------------------------------------

    def ingest(self, delta, faults=None):
        """Merge one delivered delta; return True if it was applied.

        Dedupes on ``delta.delta_id``: a replay (duplicate delivery,
        retried shipment, re-ship after a lost ack) is counted and
        dropped.  The samples and the ledger entry become durable in
        one atomic manifest commit.  *faults* may fire
        ``fleet.store.ingest`` (a writer crash after staging the
        ledger, before the commit) -- the staged mutation dies with
        the process; a reopened store sees the pre-crash manifest.
        """
        with self._ingest_lock() as retries:
            # Only now is this writer's view authoritative: reload
            # whatever a concurrent winner committed while we waited.
            self._refresh()
            if retries:
                self.ledger["lock_retries"] += retries
            return self._ingest_locked(delta, faults or NULL_INJECTOR)

    def _ingest_locked(self, delta, faults):
        if delta.delta_id in self.ledger["applied"]:
            self.ledger["duplicates_dropped"] += 1
            self.obs.counter("fleet.deltas_deduped").inc()
            # Commit the dedupe counter without touching any profile.
            self.db.merge_epoch({}, {}, delta.epoch, meta=self.ledger)
            return False
        samples = delta.total_samples()
        size = delta.encoded_bytes()
        self.ledger["applied"][delta.delta_id] = {
            "machine": delta.machine_id,
            "epoch": delta.epoch,
            "batch": delta.batch,
            "generation": delta.generation,
            "samples": samples,
            "bytes": size,
        }
        machine = self.ledger["machines"].setdefault(
            delta.machine_id, {"deltas": 0, "samples": 0, "lost": 0,
                               "workload": delta.workload,
                               "seed": delta.seed})
        machine["deltas"] += 1
        machine["samples"] += samples
        machine["lost"] = max(machine["lost"], delta.machine_lost)
        if delta.symbols:
            for image, procs in delta.symbols.items():
                self.ledger["symbols"][image] = [list(p) for p in procs]
        if delta.ctx:
            # Merge this machine's epoch ledger into the shard's
            # per-epoch ledger; request keys are seed-prefixed so
            # machines union without collision.  Committed in the same
            # atomic manifest rename as the samples it attributes.
            from repro.ctx import merge_ledger_meta
            key = "%04d" % delta.epoch
            current = self.ledger["ctx"].get(key)
            metas = [current, delta.ctx] if current else [delta.ctx]
            self.ledger["ctx"][key] = merge_ledger_meta(metas)
        self.ledger["samples_ingested"] += samples
        self.ledger["bytes_ingested"] += size
        # The crash window: ledger staged in memory, manifest not yet
        # committed.  A crash here loses nothing durable -- the
        # reopened shard shows the pre-ingest state and the unacked
        # delta is simply re-shipped.
        if faults.enabled:
            faults.check(FLEET_STORE_INGEST)
        with self.obs.timeit("fleet.merge_s"):
            self.db.merge_epoch(delta.profiles, delta.periods,
                                delta.epoch, meta=self.ledger)
        self.obs.counter("fleet.deltas_ingested").inc()
        self.obs.counter("fleet.samples_ingested").inc(samples)
        return True


class FleetStore:
    """Sharded append-only fleet profile store with epoch queries."""

    def __init__(self, root, obs=None, shards=None, retry=None):
        self.root = os.fspath(root)
        self.obs = obs or NULL_OBS
        self.retry = retry or IngestRetry()
        persisted = self._read_store_meta()
        if shards is None:
            shards = persisted if persisted else 1
        shards = int(shards)
        if shards < 1:
            raise ValueError("a store needs at least one shard")
        if persisted is not None and persisted != shards:
            raise ValueError(
                "store %s is laid out as %d shard(s); cannot open it "
                "with shards=%d" % (self.root, persisted, shards))
        if persisted is None and shards > 1:
            if os.path.isdir(os.path.join(self.root, "db")):
                raise ValueError(
                    "store %s already holds a single-shard layout; "
                    "cannot reshard it to %d" % (self.root, shards))
            self._write_store_meta(shards)
        self.num_shards = shards
        if shards == 1:
            # Legacy layout: the store root IS the shard (db/ +
            # INGEST.lock directly under it), byte-identical on disk
            # to every pre-sharding store.
            self.shards = [FleetShard(self.root, 0, obs=self.obs,
                                      retry=self.retry)]
        else:
            self.shards = [
                FleetShard(os.path.join(self.root, "shards",
                                        "s%02d" % index),
                           index, obs=self.obs, retry=self.retry)
                for index in range(shards)
            ]
    @property
    def db(self):
        """Shard 0's database (compat alias; single-shard callers keep
        working unchanged; tracks the shard's post-ingest refreshes)."""
        return self.shards[0].db

    # -- layout ------------------------------------------------------------

    def _store_meta_path(self):
        return os.path.join(self.root, STORE_META_NAME)

    def _read_store_meta(self):
        try:
            with open(self._store_meta_path()) as handle:
                return int(json.load(handle)["shards"])
        except (OSError, ValueError, KeyError):
            return None

    def _write_store_meta(self, shards):
        os.makedirs(self.root, exist_ok=True)
        path = self._store_meta_path()
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump({"schema": 1, "shards": shards}, handle)
            handle.write("\n")
        os.replace(tmp, path)

    def shard_for(self, machine_id):
        """The shard that owns *machine_id* (stable across processes)."""
        digest = zlib.crc32(str(machine_id).encode("utf-8"))
        return self.shards[digest % self.num_shards]

    @property
    def ledger(self):
        """The store ledger.

        Single-shard stores expose the live shard ledger dict (legacy
        callers read *and mutate* it); sharded stores return a merged
        read-only snapshot.
        """
        if self.num_shards == 1:
            return self.shards[0].ledger
        return self._merged_ledger()

    def _merged_ledger(self):
        from repro.ctx import merge_ledger_meta
        merged = _empty_ledger()
        ctx_by_epoch = {}
        windows = set()
        for shard in self.shards:
            ledger = shard.ledger
            merged["applied"].update(ledger["applied"])
            merged["machines"].update(ledger["machines"])
            merged["symbols"].update(ledger["symbols"])
            for key, meta in ledger["ctx"].items():
                ctx_by_epoch.setdefault(key, []).append(meta)
            for key in ("samples_ingested", "bytes_ingested",
                        "duplicates_dropped", "compactions",
                        "downsample_residue", "lock_retries"):
                merged[key] += ledger[key]
            windows.update(ledger["compacted_windows"])
        merged["ctx"] = {key: (metas[0] if len(metas) == 1
                               else merge_ledger_meta(metas))
                         for key, metas in ctx_by_epoch.items()}
        merged["compacted_windows"] = sorted(windows)
        return merged

    # -- ingest ------------------------------------------------------------

    def ingest(self, delta, faults=None):
        """Route one delivered delta to its shard and merge it there."""
        return self.shard_for(delta.machine_id).ingest(delta,
                                                       faults=faults)

    # -- read path ---------------------------------------------------------

    def epochs(self):
        """Sorted epoch ids with at least one committed profile."""
        epochs = set()
        for shard in self.shards:
            epochs.update(shard.db.epochs())
        return sorted(epochs)

    def load_all(self, epoch):
        """Yield ``(image, event, counts, period)`` across all shards.

        The store-level iteration every query and retention pass goes
        through; shard order is fixed (index order) but consumers only
        ever fold commutatively, so the result is shard-layout
        independent.
        """
        for shard in self.shards:
            yield from shard.db.load_all(epoch)

    def symbols(self):
        """{image: [(procedure, start offset, end offset), ...]}."""
        merged = {}
        for shard in self.shards:
            for image, procs in shard.ledger["symbols"].items():
                merged[image] = [tuple(p) for p in procs]
        return merged

    def machines(self):
        """Per-machine shipment accounting from the shard ledgers.

        Machine ids are disjoint across shards (a machine always
        hashes to one shard), so this union never merges entries.
        """
        merged = {}
        for shard in self.shards:
            for mid, entry in shard.ledger["machines"].items():
                merged[mid] = dict(entry)
        return merged

    def ctx_meta(self, epochs=None):
        """Merged request-context ledger over *epochs* (default: all).

        Returns a :func:`repro.ctx.merge_ledger_meta` blob -- the same
        shape ``dcpitrace`` reports from -- or None when no shipped
        delta carried the context dimension.
        """
        from repro.ctx import merge_ledger_meta
        if epochs is not None:
            wanted = {"%04d" % epoch for epoch in epochs}
        metas = []
        for shard in self.shards:
            stored = shard.ledger["ctx"]
            for key in sorted(stored):
                if epochs is None or key in wanted:
                    metas.append(stored[key])
        if not metas:
            return None
        return merge_ledger_meta(metas)

    def merged(self, epochs=None):
        """Reduce *epochs* (default: all) into a MergedProfiles.

        The reduction is the PR 1 shard merge: commutative sums per
        (image, event, offset), so the result -- and its canonical
        ``encode_all`` bytes -- is independent of delta arrival order,
        epoch fold order, *and* the store's shard count.
        """
        if epochs is None:
            epochs = self.epochs()
        counts = {}
        periods = {}
        for epoch in sorted(epochs):
            for image, event, by_offset, period in self.load_all(epoch):
                dest = counts.setdefault(image, {}).setdefault(event, {})
                for offset, count in by_offset.items():
                    dest[offset] = dest.get(offset, 0) + count
                periods[event] = max(period, periods.get(event, 0))
        return MergedProfiles(counts, periods)

    def total_samples(self, epochs=None, event=None):
        """Committed sample total over *epochs* (default: all)."""
        if epochs is None:
            epochs = self.epochs()
        total = 0
        for epoch in sorted(epochs):
            for shard in self.shards:
                total += shard.db.total_samples(epoch=epoch, event=event)
        return total

    # -- accounting --------------------------------------------------------

    def disk_bytes(self):
        """Bytes of committed profile payload (Table 5 style)."""
        return sum(shard.db.disk_bytes() for shard in self.shards)

    def quarantined_samples(self):
        """Samples quarantined by any shard's database."""
        return sum(shard.db.quarantined_samples()
                   for shard in self.shards)

    def downsample_residue(self):
        """Retention residue accounted across every shard."""
        return sum(shard.ledger["downsample_residue"]
                   for shard in self.shards)

    def verify(self):
        """Run every shard database's integrity verification.

        Returns ``{shard index: verify report}`` -- corrupt payloads
        are quarantined by the databases (PR 4 machinery) and show up
        in :meth:`quarantined_samples`.
        """
        return {shard.index: shard.db.verify()
                for shard in self.shards}

    def stats(self):
        """Ledger + database accounting in one flat dict."""
        applied = 0
        machines = set()
        sums = {"samples_ingested": 0, "bytes_ingested": 0,
                "duplicates_dropped": 0, "compactions": 0,
                "downsample_residue": 0, "lock_retries": 0}
        ctx_epochs = set()
        for shard in self.shards:
            ledger = shard.ledger
            applied += len(ledger["applied"])
            machines.update(ledger["machines"])
            ctx_epochs.update(ledger["ctx"])
            for key in sums:
                sums[key] += ledger[key]
        return {
            "epochs": len(self.epochs()),
            "shards": self.num_shards,
            "machines": len(machines),
            "deltas_applied": applied,
            "samples_ingested": sums["samples_ingested"],
            "bytes_ingested": sums["bytes_ingested"],
            "duplicates_dropped": sums["duplicates_dropped"],
            "compactions": sums["compactions"],
            "downsample_residue": sums["downsample_residue"],
            "lock_retries": sums["lock_retries"],
            "ctx_epochs": len(ctx_epochs),
            "stored_samples": self.total_samples(),
            "disk_bytes": self.disk_bytes(),
            "quarantined_samples": self.quarantined_samples(),
        }
