"""The central, append-only, epoch-aware fleet profile store.

``FleetStore`` promotes "one session, one database" to "many sources,
one store": per-machine daemons ship epoch deltas
(:mod:`repro.fleet.transport`) and the store merges them into a single
crash-safe :class:`~repro.collect.database.ProfileDatabase` (v3: CRC
trailers, shadow paging, atomic manifest), one epoch directory per
fleet epoch.

Idempotent delivery: every applied delta id ``(machine, epoch, batch)``
is recorded in a ledger committed *in the same atomic manifest rename*
as the delta's samples (:meth:`ProfileDatabase.merge_epoch`), so a
duplicate -- whether a transport fault or a retry after a crash
between merge and acknowledgment -- is recognized and dropped without
double counting.

Order independence: merging is a commutative integer sum over
``(epoch, image, event, offset)`` keys, exactly the invariant the
PR 1 shard reducer and the daemon's per-CPU drains rely on, so the
merged counts -- and their canonical encoded bytes -- are identical
under any permutation of delta arrivals (property-tested in
``tests/test_fleet.py``).
"""

import contextlib
import os

try:
    import fcntl
except ImportError:  # non-POSIX: locking degrades to a no-op
    fcntl = None

from repro.collect.database import ProfileDatabase
from repro.collect.parallel import MergedProfiles
from repro.obs import NULL_OBS

#: Ledger schema version (stored in the database manifest's "fleet"
#: key, committed atomically with every ingest).
LEDGER_VERSION = 1

#: Lock file guarding the single-writer ingest path.
INGEST_LOCK_NAME = "INGEST.lock"


class FleetStoreBusyError(RuntimeError):
    """Another writer holds the store's ingest lock.

    The store is single-writer by design (the ledger is read-modify-
    write around each atomic manifest commit); this error makes a
    second concurrent writer fail loudly instead of silently racing
    the ledger.
    """


def _empty_ledger():
    return {
        "version": LEDGER_VERSION,
        #: delta id -> {machine, epoch, batch, samples, bytes}
        "applied": {},
        #: machine id -> {deltas, samples, lost (machine-side), workload}
        "machines": {},
        #: image name -> [[procedure, start offset, end offset], ...]
        "symbols": {},
        #: fleet epoch key ("%04d") -> merged request-context ledger
        #: meta for that epoch (repro.ctx), merged across machines.
        "ctx": {},
        "samples_ingested": 0,
        "bytes_ingested": 0,
        "duplicates_dropped": 0,
        "compactions": 0,
        "downsample_residue": 0,
        #: window-start epochs already compacted by retention.
        "compacted_windows": [],
    }


class FleetStore:
    """Append-only fleet profile store with epoch queries."""

    def __init__(self, root, obs=None):
        self.root = os.fspath(root)
        self.obs = obs or NULL_OBS
        self.db = ProfileDatabase(os.path.join(self.root, "db"))
        ledger = self.db.get_meta("fleet")
        if ledger is None:
            ledger = _empty_ledger()
        else:
            # Forward-fill keys added after the store was created.
            for key, value in _empty_ledger().items():
                ledger.setdefault(key, value)
        self.ledger = ledger

    # -- ingest ------------------------------------------------------------

    @contextlib.contextmanager
    def _ingest_lock(self):
        """Advisory exclusive lock around one ingest (fail-fast).

        ``flock`` on ``<root>/INGEST.lock`` -- non-blocking, held only
        for the ingest's read-modify-write window, released (and the
        descriptor closed) on the way out even when the merge raises.
        Raises :class:`FleetStoreBusyError` when another process (or
        another open store handle) is mid-ingest.  On platforms
        without ``fcntl`` the lock degrades to a no-op, matching the
        documented single-writer assumption.
        """
        if fcntl is None:
            yield
            return
        os.makedirs(self.root, exist_ok=True)
        handle = open(os.path.join(self.root, INGEST_LOCK_NAME), "a+")
        try:
            try:
                fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                raise FleetStoreBusyError(
                    "fleet store %s is busy: another writer holds %s "
                    "(the store is single-writer; retry after the "
                    "other ingest finishes)"
                    % (self.root, INGEST_LOCK_NAME)) from None
            yield
        finally:
            handle.close()

    def ingest(self, delta):
        """Merge one delivered delta; return True if it was applied.

        Dedupes on ``delta.delta_id``: a replay (duplicate delivery,
        retried shipment) is counted and dropped.  The samples and the
        ledger entry become durable in one atomic manifest commit.
        Concurrent writers are rejected with
        :class:`FleetStoreBusyError` (see :meth:`_ingest_lock`).
        """
        with self._ingest_lock():
            return self._ingest_locked(delta)

    def _ingest_locked(self, delta):
        if delta.delta_id in self.ledger["applied"]:
            self.ledger["duplicates_dropped"] += 1
            self.obs.counter("fleet.deltas_deduped").inc()
            # Commit the dedupe counter without touching any profile.
            self.db.merge_epoch({}, {}, delta.epoch, meta=self.ledger)
            return False
        samples = delta.total_samples()
        size = delta.encoded_bytes()
        self.ledger["applied"][delta.delta_id] = {
            "machine": delta.machine_id,
            "epoch": delta.epoch,
            "batch": delta.batch,
            "generation": delta.generation,
            "samples": samples,
            "bytes": size,
        }
        machine = self.ledger["machines"].setdefault(
            delta.machine_id, {"deltas": 0, "samples": 0, "lost": 0,
                               "workload": delta.workload,
                               "seed": delta.seed})
        machine["deltas"] += 1
        machine["samples"] += samples
        machine["lost"] = max(machine["lost"], delta.machine_lost)
        if delta.symbols:
            for image, procs in delta.symbols.items():
                self.ledger["symbols"][image] = [list(p) for p in procs]
        if delta.ctx:
            # Merge this machine's epoch ledger into the fleet-wide
            # per-epoch ledger; request keys are seed-prefixed so
            # machines union without collision.  Committed in the same
            # atomic manifest rename as the samples it attributes.
            from repro.ctx import merge_ledger_meta
            key = "%04d" % delta.epoch
            current = self.ledger["ctx"].get(key)
            metas = [current, delta.ctx] if current else [delta.ctx]
            self.ledger["ctx"][key] = merge_ledger_meta(metas)
        self.ledger["samples_ingested"] += samples
        self.ledger["bytes_ingested"] += size
        with self.obs.timeit("fleet.merge_s"):
            self.db.merge_epoch(delta.profiles, delta.periods,
                                delta.epoch, meta=self.ledger)
        self.obs.counter("fleet.deltas_ingested").inc()
        self.obs.counter("fleet.samples_ingested").inc(samples)
        return True

    # -- read path ---------------------------------------------------------

    def epochs(self):
        """Sorted epoch ids with at least one committed profile."""
        return self.db.epochs()

    def symbols(self):
        """{image: [(procedure, start offset, end offset), ...]}."""
        return {image: [tuple(p) for p in procs]
                for image, procs in self.ledger["symbols"].items()}

    def machines(self):
        """Per-machine shipment accounting from the ledger."""
        return {mid: dict(entry)
                for mid, entry in self.ledger["machines"].items()}

    def ctx_meta(self, epochs=None):
        """Merged request-context ledger over *epochs* (default: all).

        Returns a :func:`repro.ctx.merge_ledger_meta` blob -- the same
        shape ``dcpitrace`` reports from -- or None when no shipped
        delta carried the context dimension.
        """
        from repro.ctx import merge_ledger_meta
        stored = self.ledger["ctx"]
        if epochs is None:
            keys = sorted(stored)
        else:
            keys = ["%04d" % epoch for epoch in sorted(epochs)]
        metas = [stored[key] for key in keys if key in stored]
        if not metas:
            return None
        return merge_ledger_meta(metas)

    def merged(self, epochs=None):
        """Reduce *epochs* (default: all) into a MergedProfiles.

        The reduction is the PR 1 shard merge: commutative sums per
        (image, event, offset), so the result -- and its canonical
        ``encode_all`` bytes -- is independent of both delta arrival
        order and the order epochs are folded in.
        """
        if epochs is None:
            epochs = self.epochs()
        counts = {}
        periods = {}
        for epoch in sorted(epochs):
            for image, event, by_offset, period in self.db.load_all(epoch):
                dest = counts.setdefault(image, {}).setdefault(event, {})
                for offset, count in by_offset.items():
                    dest[offset] = dest.get(offset, 0) + count
                periods[event] = max(period, periods.get(event, 0))
        return MergedProfiles(counts, periods)

    def total_samples(self, epochs=None, event=None):
        """Committed sample total over *epochs* (default: all)."""
        if epochs is None:
            epochs = self.epochs()
        total = 0
        for epoch in sorted(epochs):
            total += self.db.total_samples(epoch=epoch, event=event)
        return total

    # -- accounting --------------------------------------------------------

    def disk_bytes(self):
        """Bytes of committed profile payload (Table 5 style)."""
        return self.db.disk_bytes()

    def stats(self):
        """Ledger + database accounting in one flat dict."""
        return {
            "epochs": len(self.epochs()),
            "machines": len(self.ledger["machines"]),
            "deltas_applied": len(self.ledger["applied"]),
            "samples_ingested": self.ledger["samples_ingested"],
            "bytes_ingested": self.ledger["bytes_ingested"],
            "duplicates_dropped": self.ledger["duplicates_dropped"],
            "compactions": self.ledger["compactions"],
            "downsample_residue": self.ledger["downsample_residue"],
            "ctx_epochs": len(self.ledger["ctx"]),
            "stored_samples": self.total_samples(),
            "disk_bytes": self.disk_bytes(),
            "quarantined_samples": self.db.quarantined_samples(),
        }
