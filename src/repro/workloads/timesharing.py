"""A timesharing workload (paper Table 2's week-long server trace).

A 4-CPU compute server running an office/technical mix: editors,
compiles, mail filters and number crunching, timeshared with many
active PIDs.  Used for long-profile statistics (daemon memory, disk
usage, unknown-sample fraction).
"""

from repro.alpha.assembler import assemble
from repro.workloads.asmgen import caller_proc, loop_proc
from repro.workloads.base import Workload

_MIX = (
    # (image name, flavor, relative weight)
    ("editor", "branchy", 2),
    ("mailfilter", "int", 1),
    ("build", "mem", 3),
    ("crunch", "fp", 3),
    ("shell", "branchy", 1),
)


def _mix_image(name, flavor, scale):
    text = ".image %s\n.data heap, 65536\n" % name
    kwargs = {"buf": "heap", "wrap": 2048, "stride": 8} \
        if flavor == "mem" else {}
    text += loop_proc("%s_inner" % name, 4 * scale, flavor, **kwargs)
    text += loop_proc("%s_aux" % name, scale, "int")
    text += caller_proc("%s_main" % name,
                        ["%s_inner" % name, "%s_aux" % name], rounds=6)
    return assemble(text, image_name=name)


class Timesharing(Workload):
    """A multi-user compute server with many small processes."""

    name = "timesharing"
    num_cpus = 4
    description = ("timeshared office/technical server: many PIDs over "
                   "several small images (the paper's week-long profile)")

    def __init__(self, processes=20, scale=15):
        self.processes = processes
        self.scale = scale

    def setup(self, machine):
        images = [machine.load_image(_mix_image(name, flavor, self.scale))
                  for name, flavor, _ in _MIX]
        weights = []
        for index, (_, _, weight) in enumerate(_MIX):
            weights.extend([index] * weight)
        for index in range(self.processes):
            choice = weights[index % len(weights)]
            image = images[choice]
            machine.spawn(image, entry="%s:%s_main"
                          % (image.name, image.name),
                          name="%s.%d" % (image.name, index),
                          ctx="ts.%s" % image.name)


def build(processes=20, scale=15):
    return Timesharing(processes, scale)
