"""A large-code workload for instruction-cache studies (Figure 10).

Many straight-line procedures of widely varying sizes, totalling far
more code than the 8 KB L1 I-cache, called in rotation so that every
pass misses: procedures accumulate IMISS events roughly in proportion
to their size, giving the spread of per-procedure I-cache activity the
Figure 10 correlation experiment needs.
"""

import random

from repro.alpha.assembler import assemble
from repro.workloads.asmgen import caller_proc
from repro.workloads.base import Workload

_OPS = (
    "    addq  t{a}, 1, t{b}",
    "    xor   t{a}, t{b}, t{c}",
    "    s4addq t{a}, t{b}, t{c}",
    "    subq  t{a}, 3, t{b}",
    "    and   t{a}, 2047, t{b}",
    "    bis   t{a}, t{b}, t{c}",
)


def straightline_proc(name, n_insts, rng):
    """Emit a procedure of *n_insts* straight-line integer ops."""
    lines = [".proc %s" % name]
    for _ in range(n_insts):
        template = rng.choice(_OPS)
        regs = rng.sample(range(8), 3)
        lines.append(template.format(a=regs[0], b=regs[1], c=regs[2]))
    lines.append("    ret")
    lines.append(".end")
    return "\n".join(lines) + "\n"


class BigCode(Workload):
    """Rotating calls over ~50 KB of straight-line code."""

    name = "bigcode"
    num_cpus = 1
    description = ("instruction-cache stress: rotating straight-line "
                   "procedures totalling several I-cache capacities")

    def __init__(self, procedures=18, min_insts=100, max_insts=700,
                 rounds=40, seed=5):
        self.procedures = procedures
        self.min_insts = min_insts
        self.max_insts = max_insts
        self.rounds = rounds
        self.seed = seed

    def _asm(self):
        rng = random.Random(self.seed)
        text = ".image %s\n" % self.name
        names = []
        for index in range(self.procedures):
            name = "leaf_%02d" % index
            names.append(name)
            size = rng.randint(self.min_insts, self.max_insts)
            text += straightline_proc(name, size, rng)
        text += caller_proc("main", names, rounds=self.rounds)
        return text

    def setup(self, machine):
        image = assemble(self._asm(), image_name=self.name)
        machine.spawn(image, entry="%s:main" % self.name,
                      name=self.name)


def build(procedures=18, rounds=40, seed=5):
    return BigCode(procedures=procedures, rounds=rounds, seed=seed)
