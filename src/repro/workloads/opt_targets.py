"""Optimization-target workloads: each leaves one kind of cycles on
the table that :mod:`repro.opt` is built to reclaim.

* ``opt-branchy`` -- the hot path of its inner loop ends in an
  unconditional branch every iteration (the classic
  if/else-with-a-rare-then shape compilers emit); basic-block layout
  straightens the hot path so the branch is elided and the conditional
  falls through.
* ``opt-icache``  -- two hot leaf procedures separated by more than an
  I-cache of cold padding code, called alternately; their line indices
  overlap in the direct-mapped 8 KB L1I, so every call stream misses.
  Hot/cold splitting packs the hot procedures onto adjacent lines and
  the conflicts disappear.
* ``opt-stall``   -- every load's value is consumed by the very next
  instruction, serializing the loop on load-use stalls; in-block list
  scheduling hoists the independent loads together (they dual-issue)
  and sinks the consumers past the load latency.

All three are deterministic and single-process, so the opt oracle's
A/B comparison is exact.
"""

from repro.alpha.assembler import assemble
from repro.workloads.asmgen import caller_proc
from repro.workloads.base import Workload


def _straight_proc(name, n_insts):
    """A straight-line leaf of exactly *n_insts* instructions.

    Two defining writes, then a serial dependence chain (which the
    scheduler cannot legally shorten), then ``ret``.
    """
    if n_insts < 4:
        raise ValueError("straight-line proc needs >= 4 instructions")
    lines = [".proc %s" % name,
             "    lda   t0, 1(zero)",
             "    lda   t1, 2(zero)"]
    for index in range(n_insts - 3):
        if index % 2 == 0:
            lines.append("    addq  t0, 1, t0")
        else:
            lines.append("    xor   t1, t0, t1")
    lines.append("    ret")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _count_insts(text):
    """Count instruction lines (not directives, labels or blanks)."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith(".") \
                or stripped.endswith(":"):
            continue
        count += 1
    return count


class OptBranchy(Workload):
    """Hot-path unconditional branch, reclaimable by layout."""

    name = "opt-branchy"
    num_cpus = 1
    description = ("asymmetric if/else loop whose common path takes an "
                   "unconditional branch every iteration (layout target)")

    def __init__(self, iters=6000):
        self.iters = iters

    def _asm(self):
        return """
.image {name}
.proc main
    lda   t0, 0(zero)
    lda   t5, 0(zero)
    lda   v0, {iters}(zero)
main_loop:
    and   t0, 15, t4
    beq   t4, main_rare
    addq  t5, 1, t5
    xor   t5, t0, t6
    and   t6, 1023, t5
    br    main_join
main_rare:
    addq  t5, 7, t5
    and   t5, 255, t5
main_join:
    addq  t0, 1, t0
    cmpult t0, v0, t9
    bne   t9, main_loop
    ret
.end
""".format(name=self.name, iters=self.iters)

    def setup(self, machine):
        image = assemble(self._asm(), image_name=self.name)
        machine.spawn(image, entry="%s:main" % self.name,
                      name=self.name)


class OptIcache(Workload):
    """Conflicting hot procedures, reclaimable by hot/cold splitting."""

    name = "opt-icache"
    num_cpus = 1
    description = ("two hot leaves split by > 8 KB of cold code so "
                   "their I-cache lines conflict (splitting target)")

    #: direct-mapped L1 I-cache size (bytes) the conflict is built for.
    ICACHE_BYTES = 8192

    def __init__(self, rounds=40, hot_insts=320):
        self.rounds = rounds
        self.hot_insts = hot_insts

    def _asm(self):
        # main first (the planner pins the entry procedure), then one
        # hot leaf, then exactly enough never-called padding that
        # hot_b begins one I-cache size after hot_a -- identical line
        # indices, different pages, so the alternating call stream
        # evicts the other leaf on every round.
        text = ".image %s\n" % self.name
        text += caller_proc("main", ["hot_a", "hot_b"],
                            rounds=self.rounds)
        text += _straight_proc("hot_a", self.hot_insts)
        pad = self.ICACHE_BYTES // 4 - self.hot_insts
        index = 0
        while pad > 0:
            chunk = min(256, pad)
            if pad - chunk in (1, 2, 3):
                chunk = pad          # never leave a <4-inst remainder
            text += _straight_proc("cold_%02d" % index, chunk)
            pad -= chunk
            index += 1
        text += _straight_proc("hot_b", self.hot_insts)
        # By construction hot_b starts exactly ICACHE_BYTES after
        # hot_a: the padding totals ICACHE_BYTES/4 - hot_insts
        # instructions.
        spacing = 4 * (_count_insts(_straight_proc("x", self.hot_insts))
                       + (self.ICACHE_BYTES // 4 - self.hot_insts))
        assert spacing == self.ICACHE_BYTES
        return text

    def setup(self, machine):
        image = assemble(self._asm(), image_name=self.name)
        machine.spawn(image, entry="%s:main" % self.name,
                      name=self.name)


class OptStall(Workload):
    """Load-use serialization, reclaimable by list scheduling."""

    name = "opt-stall"
    num_cpus = 1
    description = ("inner loop consuming every load immediately "
                   "(load-use stall on each; scheduling target)")

    def __init__(self, iters=4000):
        self.iters = iters

    def _asm(self):
        return """
.image {name}
.data  buf, 4096
.proc main
    lda   s0, =buf
    lda   t0, 0(zero)
    lda   v0, {iters}(zero)
main_loop:
    ldq   t1, 0(s0)
    addq  t1, 1, t1
    ldq   t2, 8(s0)
    addq  t2, 1, t2
    ldq   t3, 16(s0)
    addq  t3, 1, t3
    ldq   t4, 24(s0)
    addq  t4, 1, t4
    addq  t1, t2, t5
    addq  t3, t4, t6
    addq  t5, t6, t5
    stq   t5, 0(s0)
    and   t0, 127, t7
    s8addq t7, s0, t8
    addq  t0, 1, t0
    cmpult t0, v0, t9
    bne   t9, main_loop
    ret
.end
""".format(name=self.name, iters=self.iters)

    def setup(self, machine):
        image = assemble(self._asm(), image_name=self.name)
        machine.spawn(image, entry="%s:main" % self.name,
                      name=self.name)


def build_branchy(iters=6000):
    return OptBranchy(iters=iters)


def build_icache(rounds=40):
    return OptIcache(rounds=rounds)


def build_stall(iters=4000):
    return OptStall(iters=iters)
