"""A SPECfp95-like workload suite (paper Table 2's SPECfp95 row).

Four floating-point archetypes under a runspec-style driver:

* ``swim_``    -- a 2-D stencil sweep (neighbouring loads, FP adds);
* ``tomcatv_`` -- strided vector updates with multiplies;
* ``su2cor_``  -- FP compute with periodic divides (FDIV pressure);
* ``mgrid_``   -- blocked grid relaxation (mixed loads and FP chains).

There is also a ``parallel`` variant mirroring the paper's
SUIF-parallelized SPECfp on a 4-CPU server: the same kernels run as one
process per CPU.
"""

from repro.alpha.assembler import assemble
from repro.workloads.asmgen import caller_proc, loop_proc
from repro.workloads.base import Workload

_IMAGE = "specfp95"

_SWIM = """
.proc swim_
    lda   t1, =grid
    lda   t0, 0(zero)
    lda   v0, {iters}(zero)
Lswim_loop:
    addq  t0, 1, t0
    ldt   f1, 0(t1)
    ldt   f2, 8(t1)
    ldt   f3, 1024(t1)
    addt  f1, f2, f4
    addt  f4, f3, f5
    mult  f5, f2, f6
    stt   f6, 0(t1)
    lda   t1, 8(t1)
    and   t0, 2047, t8
    bne   t8, Lswim_nowrap
    lda   t1, =grid
Lswim_nowrap:
    cmpult t0, v0, t9
    bne   t9, Lswim_loop
    ret
.end
"""

_SU2COR = """
.proc su2cor_
    lda   t7, 7(zero)
    lda   t8, =scratch
    stq   t7, 0(t8)
    ldt   f0, 0(t8)
    cpys  f0, f0, f1
    lda   t0, 0(zero)
    lda   v0, {iters}(zero)
Lsu2_loop:
    addq  t0, 1, t0
    addt  f1, f0, f1
    mult  f1, f0, f2
    and   t0, 15, t5
    bne   t5, Lsu2_nodiv
    divt  f2, f0, f3
    addt  f3, f1, f1
Lsu2_nodiv:
    cmpult t0, v0, t9
    bne   t9, Lsu2_loop
    ret
.end
"""


def _image(scale):
    text = (".image %s\n.data grid, 131072\n.data scratch, 64\n"
            ".data mesh, 65536\n" % _IMAGE)
    text += _SWIM.format(iters=10 * scale)
    text += loop_proc("tomcatv_", 8 * scale, "fp")
    text += _SU2COR.format(iters=6 * scale)
    text += loop_proc("mgrid_", 6 * scale, "mem", buf="mesh",
                      wrap=4096, stride=8)
    text += caller_proc("runspec",
                        ["swim_", "tomcatv_", "su2cor_", "mgrid_"],
                        rounds=3)
    return text


class SpecFp(Workload):
    """The FP suite under a runspec-style driver."""

    name = "specfp95"
    num_cpus = 1
    description = ("SPECfp95 stand-in: swim/tomcatv/su2cor/mgrid "
                   "archetypes under one driver (paper ref [22])")

    def __init__(self, scale=60, parallel=False, cpus=4):
        self.scale = scale
        self.parallel = parallel
        if parallel:
            self.num_cpus = cpus
            self.name = "parallel-specfp"
            self.description = ("SPECfp95 parallelized SUIF-style: one "
                                "worker per CPU (paper ref [12])")

    def setup(self, machine):
        image = machine.load_image(
            assemble(_image(self.scale), image_name=_IMAGE))
        workers = self.num_cpus if self.parallel else 1
        for index in range(workers):
            machine.spawn(image, entry="%s:runspec" % _IMAGE,
                          name="specfp.%d" % index)


def build(scale=60, parallel=False):
    return SpecFp(scale, parallel=parallel)
