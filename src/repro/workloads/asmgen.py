"""Assembly-text generators shared by the synthetic workloads.

Every generator emits a self-contained ``.proc`` block with labels
prefixed by the procedure name (labels share one namespace per image).
Procedures are leaf routines callable with ``jsr ra,(pv)`` unless noted.

Flavors:

* ``int``     -- register arithmetic (dual-issue friendly, no memory);
* ``mem``     -- load/modify/store sweep over a buffer with wraparound;
* ``fp``      -- floating add/multiply chains;
* ``branchy`` -- short data-dependent branches (mispredict pressure);
* ``stream``  -- the unrolled copy loop of the paper's Figure 2.
"""


def loop_proc(name, iters, flavor="int", buf=None, wrap=512, stride=8):
    """Emit one looping leaf procedure as assembly text.

    Args:
        name: procedure name (and label prefix).
        iters: inner-loop iteration count.
        flavor: code flavor (see module docstring).
        buf: data symbol to sweep for memory flavors.
        wrap: iterations between buffer-pointer resets (bounds footprint).
        stride: bytes advanced per iteration for memory flavors.
    """
    prefix = "L%s" % name
    if flavor == "int":
        body = """
    addq  t4, t0, t4
    s4addq t0, t4, t5
    xor   t5, t4, t6
    srl   t6, 3, t6
    addq  t6, 1, t4
    and   t4, 1023, t4
"""
        setup = "    lda   t4, 7(zero)"
        reset = ""
    elif flavor == "mem":
        if buf is None:
            raise ValueError("mem flavor needs a buffer symbol")
        body = """
    ldq   t4, 0(t1)
    addq  t4, t0, t4
    xor   t4, t0, t5
    stq   t5, 0(t1)
    lda   t1, {stride}(t1)
""".format(stride=stride)
        setup = "    lda   t1, ={buf}".format(buf=buf)
        reset = """
    and   t0, {mask}, t8
    bne   t8, {prefix}_nowrap
    lda   t1, ={buf}
{prefix}_nowrap:
""".format(mask=wrap - 1, prefix=prefix, buf=buf)
    elif flavor == "fp":
        body = """
    addt  f1, f2, f3
    mult  f3, f2, f4
    addt  f4, f1, f1
    cpys  f1, f1, f2
"""
        # f1 must be defined before the loop reads it: the Alpha ABI
        # only guarantees f2-f9 (callee-saved) hold values on entry.
        setup = "    cpys  f2, f2, f1"
        reset = ""
    elif flavor == "branchy":
        body = """
    and   t0, 3, t4
    beq   t4, {prefix}_even
    addq  t5, 3, t5
    br    {prefix}_join
{prefix}_even:
    subq  t5, 1, t5
    and   t5, 255, t5
{prefix}_join:
    and   t0, 7, t6
    cmpeq t6, 5, t6
    beq   t6, {prefix}_skip
    addq  t5, t0, t5
{prefix}_skip:
""".format(prefix=prefix)
        setup = "    lda   t5, 0(zero)"
        reset = ""
    elif flavor == "stream":
        if buf is None:
            raise ValueError("stream flavor needs a buffer symbol")
        # 4x unrolled copy within one buffer (front half -> back half).
        return """
.proc {name}
    lda   t1, ={buf}
    lda   t3, ={buf}
    lda   t2, {half}(t3)
    lda   t0, 0(zero)
    lda   v0, {iters}(zero)
{prefix}_loop:
    ldq   t4, 0(t1)
    addq  t0, 4, t0
    ldq   t5, 8(t1)
    ldq   t6, 16(t1)
    ldq   a0, 24(t1)
    lda   t1, 32(t1)
    stq   t4, 0(t2)
    cmpult t0, v0, t4
    stq   t5, 8(t2)
    stq   t6, 16(t2)
    stq   a0, 24(t2)
    lda   t2, 32(t2)
    bne   t4, {prefix}_loop
    ret
.end
""".format(name=name, buf=buf, half=(wrap * stride) // 2,
           iters=iters, prefix=prefix)
    else:
        raise ValueError("unknown flavor %r" % flavor)

    return """
.proc {name}
{setup}
    lda   t0, 0(zero)
    lda   v0, {iters}(zero)
{prefix}_loop:
    addq  t0, 1, t0
{body}{reset}    cmpult t0, v0, t9
    bne   t9, {prefix}_loop
    ret
.end
""".format(name=name, setup=setup, iters=iters, prefix=prefix,
           body=body, reset=reset)


def caller_proc(name, callees, rounds=1, externs=False):
    """Emit a procedure that calls *callees* in sequence, *rounds* times.

    Each callee is referenced with ``lda pv, =sym`` (intra- or
    cross-image; cross-image names must be passed to ``assemble`` via
    *externs*).  The caller saves/restores ``ra`` so it can itself be
    called (or be a process entry point).
    """
    prefix = "L%s" % name
    # The round counter lives in s5 (the generated leaf procedures use
    # s0-s3 for their own loops) and is callee-saved here so callers
    # can nest.
    lines = [
        ".proc %s" % name,
        "    lda   sp, -16(sp)",
        "    stq   ra, 0(sp)",
        "    stq   s5, 8(sp)",
        "    lda   s5, %d(zero)" % rounds,
        "%s_round:" % prefix,
    ]
    for callee in callees:
        lines.append("    lda   pv, =%s" % callee)
        lines.append("    jsr   ra, (pv)")
    lines.extend([
        "    subq  s5, 1, s5",
        "    bgt   s5, %s_round" % prefix,
        "    ldq   s5, 8(sp)",
        "    ldq   ra, 0(sp)",
        "    lda   sp, 16(sp)",
        "    ret",
        ".end",
    ])
    return "\n".join(lines) + "\n"
