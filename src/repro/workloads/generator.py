"""Random structured-program generator (paper section 6.2's experiment).

The paper evaluates frequency-estimate accuracy by comparing estimates
against instrumented execution counts over a program suite.  Our suite
is generated: structured procedures built from straight-line chunks,
counted loops and if/else splits whose conditions depend on an
induction variable -- deterministic (a given seed always executes
identically) but with irregular, program-like block frequencies, which
is exactly what Figures 8 and 9 need.
"""

import random

from repro.alpha.assembler import assemble
from repro.workloads.asmgen import caller_proc
from repro.workloads.base import Workload

_CHUNK_OPS = (
    "    addq  t0, t1, t2",
    "    s4addq t1, t2, t3",
    "    xor   t2, t3, t0",
    "    sll   t0, 2, t4",
    "    srl   t4, 1, t1",
    "    cmpult t1, t2, t5",
    "    addq  t5, t3, t1",
    "    subq  t2, t1, t3",
    "    and   t3, 1023, t2",
    "    bis   t0, t4, t0",
)

_LOOP_REGS = ("s0", "s1", "s2", "s3")


class _Emitter:
    """Recursive structured-code emitter for one procedure."""

    def __init__(self, rng, max_depth=3, budget=120, prefix="G"):
        self.rng = rng
        self.max_depth = max_depth
        self.budget = budget
        self.prefix = prefix
        self.lines = []
        self.label_counter = 0
        self.emitted = 0

    def _label(self, hint):
        self.label_counter += 1
        return "%s_%s_%d" % (self.prefix, hint, self.label_counter)

    def emit(self, line):
        self.lines.append(line)
        if not line.rstrip().endswith(":"):
            self.emitted += 1

    def chunk(self):
        n = self.rng.randint(2, 5)
        for _ in range(n):
            self.emit(self.rng.choice(_CHUNK_OPS))
        self.emit("    addq  a5, 1, a5")

    def memop(self):
        # A bounded buffer walk: index derived from the induction var.
        self.emit("    and   a5, 511, t6")
        self.emit("    s8addq t6, a4, t7")
        if self.rng.random() < 0.5:
            self.emit("    ldq   t8, 0(t7)")
            self.emit("    addq  t8, a5, t8")
        else:
            self.emit("    stq   a5, 0(t7)")

    def loop(self, depth):
        reg = _LOOP_REGS[depth]
        trip = self.rng.randint(2, 9)
        top = self._label("loop")
        self.emit("    lda   %s, %d(zero)" % (reg, trip))
        self.emit("%s:" % top)
        self.body(depth + 1, top_level=False)
        self.emit("    subq  %s, 1, %s" % (reg, reg))
        self.emit("    bgt   %s, %s" % (reg, top))

    def branch(self, depth):
        mask = self.rng.choice((1, 3, 7))
        sense = self.rng.choice(("beq", "bne"))
        else_label = self._label("else")
        end_label = self._label("end")
        self.emit("    and   a5, %d, t9" % mask)
        self.emit("    %s   t9, %s" % (sense, else_label))
        self.body(depth + 1, top_level=False)
        if self.rng.random() < 0.7:
            self.emit("    br    %s" % end_label)
            self.emit("%s:" % else_label)
            self.body(depth + 1, top_level=False)
            self.emit("%s:" % end_label)
        else:
            # if-without-else
            self.emit("%s:" % else_label)

    def body(self, depth, top_level=True):
        items = self.rng.randint(1, 3 if not top_level else 4)
        for _ in range(items):
            if self.emitted >= self.budget:
                break
            roll = self.rng.random()
            if depth < self.max_depth and roll < 0.35:
                self.loop(depth)
            elif depth < self.max_depth and roll < 0.6:
                self.branch(depth)
            elif roll < 0.75:
                self.memop()
            else:
                self.chunk()
        if top_level and self.emitted < 4:
            self.chunk()


def generate_procedure(name, rng, max_depth=3, budget=120):
    """Emit one random procedure as assembly text."""
    emitter = _Emitter(rng, max_depth, budget, prefix=name)
    emitter.emit("    lda   a4, =heap")
    emitter.emit("    lda   a5, 0(zero)")
    emitter.body(0)
    body = "\n".join(emitter.lines)
    return ".proc %s\n%s\n    ret\n.end\n" % (name, body)


class GeneratedProgram(Workload):
    """One random program: a few procedures plus a driver."""

    num_cpus = 1
    description = "randomly generated structured program"

    def __init__(self, seed, procedures=3, rounds=40, max_depth=3):
        self.seed = seed
        self.procedures = procedures
        self.rounds = rounds
        self.max_depth = max_depth
        self.name = "gen%04d" % seed

    def _asm(self):
        rng = random.Random(self.seed)
        text = ".image %s\n.data heap, 8192\n" % self.name
        names = []
        for index in range(self.procedures):
            name = "proc_%d_%d" % (self.seed, index)
            names.append(name)
            text += generate_procedure(name, rng, self.max_depth)
        text += caller_proc("main_%d" % self.seed, names,
                            rounds=self.rounds)
        return text

    def setup(self, machine):
        image = assemble(self._asm(), image_name=self.name)
        machine.spawn(image, entry="%s:main_%d" % (self.name, self.seed),
                      name=self.name)


def generate_suite(count=12, base_seed=100, rounds=40):
    """Return *count* generated workloads with distinct seeds."""
    return [GeneratedProgram(base_seed + i, rounds=rounds)
            for i in range(count)]
