"""A SPECint95-like workload suite (paper Table 2's SPECint95 row).

Five synthetic programs mimicking the integer suite's behavioural
archetypes, run back to back under one driver process (the paper ran
the suite with its runspec driver):

* ``compress_``  -- bit-twiddling over a sliding window (shift/mask
  heavy, modest memory);
* ``li_``        -- a list-interpreter loop chasing cons cells
  (dependent loads);
* ``perl_``      -- dispatch-heavy interpretation (indirect-ish
  branching via dense conditional ladders);
* ``ijpeg_``     -- blocked array transforms (strided loads/stores,
  multiplies);
* ``vortex_``    -- an object store: hash probes over a large table.
"""

from repro.alpha.assembler import assemble
from repro.workloads.asmgen import caller_proc, loop_proc
from repro.workloads.base import Workload

_IMAGE = "specint95"

_COMPRESS = """
.proc compress_
    lda   t4, 12345(zero)
    lda   t0, 0(zero)
    lda   v0, {iters}(zero)
Lcompress_loop:
    addq  t0, 1, t0
    sll   t4, 3, t5
    srl   t4, 11, t6
    xor   t5, t6, t4
    and   t4, 0xff, t7
    s4addq t7, t4, t4
    and   t4, 65535, t8
    bis   t8, 1, t4
    cmpult t0, v0, t9
    bne   t9, Lcompress_loop
    ret
.end
"""

_LI = """
.proc li_
    lda   t1, =cells
    lda   t2, 0(t1)
    lda   t0, 0(zero)
    lda   v0, {cells}(zero)
Lli_init:
    addq  t0, 1, t0
    s8addq t0, t1, t3
    and   t0, {mask}, t5
    s8addq t5, t1, t5
    stq   t5, -8(t3)
    cmpult t0, v0, t9
    bne   t9, Lli_init
    lda   t0, 0(zero)
    lda   v0, {iters}(zero)
    bis   t1, t1, t2
Lli_chase:
    addq  t0, 1, t0
    ldq   t2, 0(t2)
    cmpult t0, v0, t9
    bne   t9, Lli_chase
    ret
.end
"""


def _image(scale):
    text = (".image %s\n.data cells, 65536\n.data objstore, 262144\n"
            ".data pixels, 131072\n" % _IMAGE)
    text += _COMPRESS.format(iters=8 * scale)
    text += _LI.format(cells=4000, mask=4095, iters=6 * scale)
    text += loop_proc("perl_", 6 * scale, "branchy")
    text += loop_proc("ijpeg_", 5 * scale, "mem", buf="pixels",
                      wrap=4096, stride=16)
    text += loop_proc("vortex_", 5 * scale, "mem", buf="objstore",
                      wrap=8192, stride=32)
    text += caller_proc("runspec",
                        ["compress_", "li_", "perl_", "ijpeg_",
                         "vortex_"], rounds=3)
    return text


class SpecInt(Workload):
    """The integer suite under a runspec-style driver."""

    name = "specint95"
    num_cpus = 1
    description = ("SPECint95 stand-in: compress/li/perl/ijpeg/vortex "
                   "archetypes under one driver (paper ref [22])")

    def __init__(self, scale=60):
        self.scale = scale

    def setup(self, machine):
        image = assemble(_image(self.scale), image_name=_IMAGE)
        machine.spawn(image, entry="%s:runspec" % _IMAGE,
                      name="specint95")


def build(scale=60):
    return SpecInt(scale)
