"""A wave5-like SPECfp workload (paper Figures 3 and 4).

The paper used wave5 to demonstrate dcpistats: run-to-run variance was
concentrated in the ``smooth_`` procedure and traced to D-cache/DTB/
write-buffer behaviour that depends on the virtual-to-physical page
mapping of each run.  This stand-in has the same structure:

* ``parmvr_`` dominates total time (compute-heavy FP loops);
* ``smooth_`` sweeps several large arrays whose *physically-indexed*
  board-cache conflicts -- and DTB pressure -- vary with the per-run
  page assignment, producing genuine cross-run variance;
* ``fftb_``, ``ffef_``, ``putb_`` and ``vslvip_`` fill out the profile.
"""

from repro.alpha.assembler import assemble
from repro.workloads.asmgen import caller_proc, loop_proc
from repro.workloads.base import Workload

_IMAGE = "wave5"

# smooth_ touches four arrays with a page-sized stride, so each iteration
# hits a new page (DTB pressure) and the interleaving of physical pages
# decides board-cache conflicts.
_SMOOTH = """
.proc smooth_
    lda   t1, =grid1
    lda   t2, =grid2
    lda   t3, =grid3
    lda   a1, =grid4
    lda   t0, 0(zero)
    lda   v0, {iters}(zero)
Lsmooth_loop:
    ldt   f1, 0(t1)
    addq  t0, 1, t0
    ldt   f2, 0(t2)
    ldt   f3, 0(t3)
    addt  f1, f2, f4
    mult  f4, f3, f5
    addt  f5, f1, f6
    stt   f6, 0(a1)
    lda   t1, {stride}(t1)
    lda   t2, {stride}(t2)
    lda   t3, {stride}(t3)
    lda   a1, {stride}(a1)
    and   t0, {mask}, t8
    bne   t8, Lsmooth_nowrap
    lda   t1, =grid1
    lda   t2, =grid2
    lda   t3, =grid3
    lda   a1, =grid4
Lsmooth_nowrap:
    cmpult t0, v0, t9
    bne   t9, Lsmooth_loop
    ret
.end
"""


class Wave5(Workload):
    """Sequential SPECfp95 wave5 stand-in."""

    name = "wave5"
    num_cpus = 1
    description = ("SPECfp95 wave5 stand-in: parmvr_-dominated FP code "
                   "with a page-mapping-sensitive smooth_ procedure")

    def __init__(self, scale=10, rounds=12, smooth_pages=24):
        self.scale = scale
        self.rounds = rounds
        self.smooth_pages = smooth_pages

    def _image(self):
        pages = self.smooth_pages
        stride = 4096  # half a page: two iterations per page, new page fast
        nbytes = pages * 8192 + stride
        text = ".image %s\n" % _IMAGE
        for sym in ("grid1", "grid2", "grid3", "grid4"):
            text += ".data %s, %d\n" % (sym, nbytes)
        text += ".data work, 65536\n"
        text += _SMOOTH.format(iters=6 * self.scale, stride=stride,
                               mask=2 * pages - 1)
        text += loop_proc("parmvr_", 60 * self.scale, "fp")
        text += loop_proc("fftb_", self.scale, "fp")
        text += loop_proc("ffef_", self.scale, "fp")
        text += loop_proc("putb_", 5 * self.scale, "mem", buf="work",
                          wrap=2048, stride=8)
        text += loop_proc("vslvip_", 6 * self.scale, "int")
        text += caller_proc(
            "MAIN__",
            ["parmvr_", "smooth_", "fftb_", "ffef_", "putb_", "vslvip_"],
            rounds=self.rounds)
        return assemble(text, image_name=_IMAGE)

    def setup(self, machine):
        machine.spawn(self._image(), entry="%s:MAIN__" % _IMAGE,
                      name="wave5")


def build(scale=10, rounds=12, smooth_pages=24):
    return Wave5(scale, rounds, smooth_pages)
