"""The McCalpin STREAM-style workload (paper Table 2, Figures 2 and 7).

Four memory-bandwidth kernels over arrays much larger than the primary
caches, each unrolled four times exactly like the copy loop the paper
analyzes in Figure 2:

* ``assign`` -- c[i] = a[i]           (the paper's copy benchmark)
* ``scale``  -- b[i] = s * c[i]
* ``sum``    -- a[i] = b[i] + c[i]
* ``saxpy``  -- a[i] = b[i] + s * c[i]
"""

from repro.alpha.assembler import assemble
from repro.workloads.base import Workload

KERNELS = ("assign", "scale", "sum", "saxpy")

_PROLOGUE = """
.image mccalpin
.data a, {nbytes}
.data b, {nbytes}
.data c, {nbytes}
.data scalar, 64
"""

# The paper's Figure 2 copy loop, verbatim apart from register naming.
_ASSIGN = """
.proc assign
    lda   a4, {iters}(zero)
outer:
    lda   t1, =a
    lda   t2, =c
    lda   t0, 0(zero)
    lda   v0, {n}(zero)
loop:
    ldq   t4, 0(t1)
    addq  t0, 4, t0
    ldq   t5, 8(t1)
    ldq   t6, 16(t1)
    ldq   a0, 24(t1)
    lda   t1, 32(t1)
    stq   t4, 0(t2)
    cmpult t0, v0, t4
    stq   t5, 8(t2)
    stq   t6, 16(t2)
    stq   a0, 24(t2)
    lda   t2, 32(t2)
    bne   t4, loop
    subq  a4, 1, a4
    bgt   a4, outer
    ret
.end
"""

_SCALE = """
.proc scale
    lda   t7, 3(zero)
    lda   t8, =scalar
    stq   t7, 0(t8)
    ldt   f0, 0(t8)
    lda   a4, {iters}(zero)
outer:
    lda   t1, =c
    lda   t2, =b
    lda   t0, 0(zero)
    lda   v0, {n}(zero)
loop:
    ldt   f1, 0(t1)
    addq  t0, 4, t0
    ldt   f2, 8(t1)
    ldt   f3, 16(t1)
    ldt   f4, 24(t1)
    lda   t1, 32(t1)
    mult  f0, f1, f1
    mult  f0, f2, f2
    mult  f0, f3, f3
    mult  f0, f4, f4
    stt   f1, 0(t2)
    cmpult t0, v0, t4
    stt   f2, 8(t2)
    stt   f3, 16(t2)
    stt   f4, 24(t2)
    lda   t2, 32(t2)
    bne   t4, loop
    subq  a4, 1, a4
    bgt   a4, outer
    ret
.end
"""

_SUM = """
.proc sum
    lda   a4, {iters}(zero)
outer:
    lda   t1, =b
    lda   t2, =c
    lda   t3, =a
    lda   t0, 0(zero)
    lda   v0, {n}(zero)
loop:
    ldt   f1, 0(t1)
    addq  t0, 4, t0
    ldt   f2, 0(t2)
    ldt   f3, 8(t1)
    ldt   f4, 8(t2)
    lda   t1, 16(t1)
    addt  f1, f2, f5
    addt  f3, f4, f6
    lda   t2, 16(t2)
    stt   f5, 0(t3)
    cmpult t0, v0, t4
    stt   f6, 8(t3)
    lda   t3, 16(t3)
    bne   t4, loop
    subq  a4, 1, a4
    bgt   a4, outer
    ret
.end
"""

_SAXPY = """
.proc saxpy
    lda   t7, 3(zero)
    lda   t8, =scalar
    stq   t7, 0(t8)
    ldt   f0, 0(t8)
    lda   a4, {iters}(zero)
outer:
    lda   t1, =b
    lda   t2, =c
    lda   t3, =a
    lda   t0, 0(zero)
    lda   v0, {n}(zero)
loop:
    ldt   f1, 0(t1)
    addq  t0, 2, t0
    ldt   f2, 0(t2)
    ldt   f3, 8(t1)
    ldt   f4, 8(t2)
    lda   t1, 16(t1)
    mult  f0, f2, f2
    mult  f0, f4, f4
    lda   t2, 16(t2)
    addt  f1, f2, f5
    addt  f3, f4, f6
    stt   f5, 0(t3)
    cmpult t0, v0, t4
    stt   f6, 8(t3)
    lda   t3, 16(t3)
    bne   t4, loop
    subq  a4, 1, a4
    bgt   a4, outer
    ret
.end
"""

_BODIES = {
    "assign": (_ASSIGN, 4),   # elements consumed per unrolled iteration
    "scale": (_SCALE, 4),
    "sum": (_SUM, 4),         # counter advances by 4 (two pairs)
    "saxpy": (_SAXPY, 2),
}


class McCalpin(Workload):
    """One STREAM kernel looping over large arrays."""

    num_cpus = 1
    description = ("McCalpin STREAMS-style loop measuring memory-system "
                   "bandwidth (paper ref [15])")

    def __init__(self, kernel="assign", n=8192, iterations=4):
        if kernel not in KERNELS:
            raise ValueError("kernel must be one of %s" % (KERNELS,))
        self.kernel = kernel
        self.n = n
        self.iterations = iterations
        self.name = "mccalpin-%s" % kernel

    def _asm(self):
        body, _ = _BODIES[self.kernel]
        return (_PROLOGUE.format(nbytes=self.n * 8)
                + body.format(n=self.n, iters=self.iterations))

    def setup(self, machine):
        image = assemble(self._asm())
        machine.spawn(image, name=self.name)

    @property
    def hot_procedure(self):
        return self.kernel


def build(kernel="assign", n=8192, iterations=4):
    """Convenience constructor used throughout examples and tests."""
    return McCalpin(kernel, n, iterations)
