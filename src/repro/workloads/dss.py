"""A decision-support (TPC-D-style) workload (paper Table 2).

One scan/join/aggregate query pipeline per CPU of an 8-CPU server:
sequential table scans (streaming loads), hash-join probes and a small
aggregation loop.  Like the paper's DSS run it has a small, hot code
footprint (low eviction rate, cheapest interrupt handling in Table 4).
"""

from repro.alpha.assembler import assemble
from repro.workloads.asmgen import caller_proc, loop_proc
from repro.workloads.base import Workload

_IMAGE = "dssquery"


def _query_image(scale):
    text = (".image %s\n.data lineitem, 524288\n"
            ".data hashtbl, 131072\n" % _IMAGE)
    text += loop_proc("ScanLineitem", 30 * scale, "mem", buf="lineitem",
                      wrap=8192, stride=32)
    text += loop_proc("ProbeHashJoin", 10 * scale, "mem", buf="hashtbl",
                      wrap=4096, stride=8)
    text += loop_proc("Aggregate", 8 * scale, "int")
    text += caller_proc("run_query", ["ScanLineitem", "ProbeHashJoin",
                                      "Aggregate"], rounds=5)
    return text


class DSS(Workload):
    """A TPC-D-style decision-support query on an 8-CPU server."""

    name = "dss"
    num_cpus = 8
    description = ("decision-support (TPC-D-style) query: parallel scans, "
                   "hash joins and aggregation on an 8-CPU server")

    def __init__(self, workers=8, scale=8):
        self.workers = workers
        self.scale = scale

    def setup(self, machine):
        image = machine.load_image(
            assemble(_query_image(self.scale), image_name=_IMAGE))
        for index in range(self.workers):
            machine.spawn(image, entry="%s:run_query" % _IMAGE,
                          name="dss.%d" % index, ctx="dss.query")


def build(workers=8, scale=8):
    return DSS(workers, scale)
