"""Workload protocol shared by all synthetic benchmarks.

A workload builds fresh images and spawns processes when ``setup`` is
called (linking fixes absolute addresses per machine, so images are
never reused across machines).
"""


class Workload:
    """Base class for synthetic workloads."""

    #: registry name
    name = "workload"
    #: CPUs the workload expects (Table 2's platform column)
    num_cpus = 1
    #: one-line description (Table 2's description column)
    description = ""

    def setup(self, machine):
        """Build images and spawn processes on *machine*."""
        raise NotImplementedError

    def __call__(self, machine):
        self.setup(machine)

    def __repr__(self):
        return "<Workload %s (%d cpu)>" % (self.name, self.num_cpus)
