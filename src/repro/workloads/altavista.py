"""An AltaVista-like multiprocessor search workload (paper Table 2).

Eight outstanding queries against a large in-memory index on a 4-CPU
server.  The code footprint is tiny and stable (few distinct sampled
PCs -> very low hash-eviction rate -> the lowest profiling overhead in
the paper's Table 3) while the data footprint is large (index scans
dominated by memory latency).
"""

from repro.alpha.assembler import assemble
from repro.workloads.asmgen import caller_proc, loop_proc
from repro.workloads.base import Workload

_IMAGE = "altavista"


def _index_image(scale):
    text = ".image %s\n.data index, 1048576\n.data postings, 262144\n" % _IMAGE
    # Scan with a 64-byte stride: every access a new cache line.
    text += loop_proc("ScanIndex", 30 * scale, "mem", buf="index",
                      wrap=8192, stride=64)
    text += loop_proc("MergePostings", 8 * scale, "mem", buf="postings",
                      wrap=2048, stride=16)
    text += loop_proc("RankResults", 6 * scale, "int")
    text += caller_proc("query", ["ScanIndex", "MergePostings",
                                  "RankResults"], rounds=6)
    return text


class AltaVista(Workload):
    """8 query processes on a 4-CPU server."""

    name = "altavista"
    num_cpus = 4
    description = ("AltaVista-style index search: 8 outstanding queries "
                   "on a 4-CPU server, memory-latency bound")

    def __init__(self, queries=8, scale=10):
        self.queries = queries
        self.scale = scale

    def setup(self, machine):
        image = machine.load_image(
            assemble(_index_image(self.scale), image_name=_IMAGE))
        for index in range(self.queries):
            # Request-class identity (repro.ctx): alternate simple and
            # complex query classes across the outstanding queries.
            cls = "search.simple" if index % 2 == 0 else "search.complex"
            machine.spawn(image, entry="%s:query" % _IMAGE,
                          name="query.%d" % index, ctx=cls)


def build(queries=8, scale=10):
    return AltaVista(queries, scale)
