"""Synthetic stand-ins for the paper's workloads (Table 2)."""

from repro.workloads.base import Workload
from repro.workloads.registry import (OPT_TARGETS, WORKLOADS, get_workload,
                                      workload_names)

__all__ = ["Workload", "get_workload", "workload_names", "WORKLOADS",
           "OPT_TARGETS"]
