"""A gcc-like compile workload (paper Table 2, Figure 6, Table 4).

The paper's gcc workload compiles 56 files, each in its own process
with a distinct PID; since hash-table keys include the PID, samples
never aggregate across invocations and the driver's eviction rate -- and
hence profiling overhead -- is the highest of all workloads.  This
stand-in has the same signature: many short-lived processes with
distinct PIDs running over a large shared text image (instruction-cache
pressure included).
"""

from repro.alpha.assembler import assemble
from repro.workloads.asmgen import caller_proc, loop_proc
from repro.workloads.base import Workload

_IMAGE = "cc1"
_PHASES = ("lex", "parse", "tree", "rtlgen", "jump", "cse", "loop",
           "flow", "combine", "sched", "regalloc", "final")


def _cc1_image(scale):
    """A compiler-sized image: 48 pass procedures plus 8 drivers."""
    text = ".image %s\n.data symtab, 131072\n.data insns, 65536\n" % _IMAGE
    flavors = ("branchy", "int", "mem", "branchy")
    for phase_index, phase in enumerate(_PHASES):
        for variant in range(4):
            flavor = flavors[(phase_index + variant) % len(flavors)]
            kwargs = {}
            if flavor == "mem":
                kwargs = {"buf": "symtab" if variant % 2 else "insns",
                          "wrap": 1024, "stride": 8}
            text += loop_proc("%s_%d" % (phase, variant),
                              scale + phase_index % 3, flavor, **kwargs)
    # Eight drivers, each exercising a different slice of the passes
    # (different source files stress different compiler paths).
    for driver in range(8):
        callees = []
        for phase_index, phase in enumerate(_PHASES):
            variant = (driver + phase_index) % 4
            if (phase_index + driver) % 3 != 2:
                callees.append("%s_%d" % (phase, variant))
        text += caller_proc("compile_%d" % driver, callees, rounds=2)
    return text


class Gcc(Workload):
    """56 short compiles, each a fresh PID."""

    name = "gcc"
    num_cpus = 1
    description = ("gcc-style compile driver: 56 separate processes over "
                   "a large shared text image (high hash-eviction rate)")

    def __init__(self, files=56, scale=40):
        self.files = files
        self.scale = scale

    def setup(self, machine):
        image = machine.load_image(
            assemble(_cc1_image(self.scale), image_name=_IMAGE))
        for index in range(self.files):
            entry = "%s:compile_%d" % (_IMAGE, index % 8)
            machine.spawn(image, entry=entry, name="cc1.%d" % index)


def build(files=56, scale=40):
    return Gcc(files, scale)
