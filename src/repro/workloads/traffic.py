"""Traffic-shape scenarios for per-request attribution (repro.ctx).

Three server traffic patterns whose *per-request* behavior -- not
their aggregate profile -- is the interesting signal, built for the
``dcpitrace`` tail reports:

* ``bursty``       -- a steady background class plus bursts of short
  requests arriving together; queueing inflates the burst class's
  p99 latency far beyond its p50.
* ``slow-client``  -- fast in-cache requests sharing CPUs with a few
  slow clients whose requests sweep memory; the classes have similar
  instruction counts but very different CPI.
* ``mixed-tenant`` -- three tenants with distinct flavors (integer,
  memory, branchy) on one box; per-class culprit lists show who is
  burning the cycles.

Each request is one process labeled with its request class via the
``ctx=`` spawn argument, so the OS-sim publishes the class on every
context switch and the driver's context dimension attributes samples
to it (:mod:`repro.ctx`).
"""

from repro.alpha.assembler import assemble
from repro.workloads.asmgen import caller_proc, loop_proc
from repro.workloads.base import Workload


def _server_image(name, scale):
    """The shared server image: fast, slow and branchy request paths."""
    text = ".image %s\n.data heap, 262144\n" % name
    text += loop_proc("HandleFast", 6 * scale, "int")
    text += loop_proc("HandleSlow", 6 * scale, "mem", buf="heap",
                      wrap=4096, stride=64)
    text += loop_proc("ParseRequest", 2 * scale, "branchy")
    text += caller_proc("serve_fast", ["ParseRequest", "HandleFast"],
                        rounds=4)
    text += caller_proc("serve_slow", ["ParseRequest", "HandleSlow"],
                        rounds=4)
    return assemble(text, image_name=name)


class Bursty(Workload):
    """Steady background load plus bursts of short requests."""

    name = "bursty"
    num_cpus = 4
    description = ("bursty traffic: steady background requests plus "
                   "synchronized request bursts that queue behind "
                   "each other (tail-latency scenario)")

    def __init__(self, steady=3, burst=12, scale=6):
        self.steady = steady
        self.burst = burst
        self.scale = scale

    def setup(self, machine):
        image = _server_image("burstysrv", self.scale)
        server = machine.load_image(image)
        for index in range(self.steady):
            machine.spawn(server, entry="burstysrv:serve_slow",
                          name="steady.%d" % index, ctx="req.steady")
        # The burst arrives all at once: every request is runnable
        # immediately, so most of them wait in the run queue and the
        # class's cycles-per-request spread (p99 vs p50) is queueing.
        for index in range(self.burst):
            machine.spawn(server, entry="burstysrv:serve_fast",
                          name="burst.%d" % index, ctx="req.burst")


class SlowClient(Workload):
    """Fast in-cache requests sharing CPUs with slow memory-bound ones."""

    name = "slow-client"
    num_cpus = 2
    description = ("slow-client traffic: fast in-cache requests next "
                   "to memory-sweeping slow clients; same code, very "
                   "different per-class CPI")

    def __init__(self, fast=6, slow=2, scale=6):
        self.fast = fast
        self.slow = slow
        self.scale = scale

    def setup(self, machine):
        image = _server_image("slowcsrv", self.scale)
        server = machine.load_image(image)
        for index in range(self.fast):
            machine.spawn(server, entry="slowcsrv:serve_fast",
                          name="fast.%d" % index, ctx="client.fast")
        for index in range(self.slow):
            machine.spawn(server, entry="slowcsrv:serve_slow",
                          name="slow.%d" % index, ctx="client.slow")


class MixedTenant(Workload):
    """Three tenants with distinct flavors sharing one box."""

    name = "mixed-tenant"
    num_cpus = 4
    description = ("mixed-tenant traffic: integer, memory and branchy "
                   "tenants on one box; per-class culprits attribute "
                   "the cycles")

    #: (tenant class, image name, flavor, processes)
    TENANTS = (
        ("tenant.a", "tenant_a", "int", 3),
        ("tenant.b", "tenant_b", "mem", 3),
        ("tenant.c", "tenant_c", "branchy", 3),
    )

    def __init__(self, scale=6):
        self.scale = scale

    def setup(self, machine):
        for cls, image_name, flavor, procs in self.TENANTS:
            text = ".image %s\n.data heap, 131072\n" % image_name
            kwargs = ({"buf": "heap", "wrap": 2048, "stride": 32}
                      if flavor == "mem" else {})
            text += loop_proc("%s_work" % image_name, 8 * self.scale,
                              flavor, **kwargs)
            text += caller_proc("%s_main" % image_name,
                                ["%s_work" % image_name], rounds=5)
            image = machine.load_image(
                assemble(text, image_name=image_name))
            for index in range(procs):
                machine.spawn(image,
                              entry="%s:%s_main" % (image_name,
                                                    image_name),
                              name="%s.%d" % (image_name, index),
                              ctx=cls)


def build_bursty(steady=3, burst=12, scale=6):
    return Bursty(steady, burst, scale)


def build_slow_client(fast=6, slow=2, scale=6):
    return SlowClient(fast, slow, scale)


def build_mixed_tenant(scale=6):
    return MixedTenant(scale)
