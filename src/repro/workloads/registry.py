"""Registry of the paper's Table 2 workloads."""

from repro.workloads import (altavista, bigcode, dss, gcc, mccalpin,
                             opt_targets, specfp, specint, timesharing,
                             traffic, wave5, x11perf)

#: name -> zero-argument factory producing a fresh Workload.
_FACTORIES = {
    "specint95": specint.build,
    "specfp95": specfp.build,
    "parallel-specfp": lambda: specfp.build(parallel=True),
    "bigcode": bigcode.build,
    "mccalpin": lambda: mccalpin.build("assign"),
    "mccalpin-assign": lambda: mccalpin.build("assign"),
    "mccalpin-scale": lambda: mccalpin.build("scale"),
    "mccalpin-sum": lambda: mccalpin.build("sum"),
    "mccalpin-saxpy": lambda: mccalpin.build("saxpy"),
    "x11perf": x11perf.build,
    "wave5": wave5.build,
    "gcc": gcc.build,
    "altavista": altavista.build,
    "dss": dss.build,
    "timesharing": timesharing.build,
    "bursty": traffic.build_bursty,
    "slow-client": traffic.build_slow_client,
    "mixed-tenant": traffic.build_mixed_tenant,
    "opt-branchy": opt_targets.build_branchy,
    "opt-icache": opt_targets.build_icache,
    "opt-stall": opt_targets.build_stall,
}

#: The Table 2 lineup (uniprocessor first, like the paper).
WORKLOADS = (
    "specint95",
    "specfp95",
    "x11perf",
    "mccalpin-assign",
    "mccalpin-scale",
    "mccalpin-sum",
    "mccalpin-saxpy",
    "wave5",
    "gcc",
    "altavista",
    "dss",
    "parallel-specfp",
    "timesharing",
    "bursty",
    "slow-client",
    "mixed-tenant",
)

#: Registry names ``dcpiopt`` treats as its demonstration suite: each
#: leaves a specific kind of cycles on the table for one of the three
#: optimization passes (see :mod:`repro.workloads.opt_targets`).
OPT_TARGETS = (
    "opt-branchy",
    "opt-icache",
    "opt-stall",
)


def workload_names():
    return sorted(_FACTORIES)


def get_workload(name):
    """Instantiate the workload registered under *name*."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError("unknown workload %r; known: %s"
                       % (name, ", ".join(workload_names()))) from None
    return factory()
