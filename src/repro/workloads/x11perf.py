"""An x11perf-like X server workload (paper Table 2 and Figure 1).

Reproduces the *shape* of the paper's Figure 1 dcpiprof listing: one hot
graphics routine (``ffb8ZeroPolyArc``) dominating, request parsing and
arc setup next, and visible kernel (``/vmunix``) time -- spread over an
application image, three shared libraries and the kernel image, so the
profile demonstrates full-system attribution.
"""

from repro.alpha.assembler import assemble
from repro.workloads.asmgen import caller_proc, loop_proc
from repro.workloads.base import Workload

_FFB_LIB = "/usr/shlib/X11/lib_dec_ffb_ev5.so"
_OS_LIB = "/usr/shlib/X11/libos.so"
_MI_LIB = "/usr/shlib/X11/libmi.so"
_KERNEL = "/vmunix"
_APP = "x11perf"


def _ffb_image(scale):
    text = ".image %s\n.data fbuf, 65536\n" % _FFB_LIB
    text += loop_proc("ffb8ZeroPolyArc", 48 * scale, "mem", buf="fbuf",
                      wrap=2048, stride=16)
    text += loop_proc("ffb8FillPolygon", 5 * scale, "mem", buf="fbuf",
                      wrap=512, stride=32)
    return assemble(text, image_name=_FFB_LIB)


def _os_image(scale):
    text = ".image %s\n.data reqbuf, 16384\n" % _OS_LIB
    text += loop_proc("ReadRequestFromClient", 11 * scale, "branchy")
    text += loop_proc("Dispatch", 5 * scale, "branchy")
    return assemble(text, image_name=_OS_LIB)


def _mi_image(scale):
    text = ".image %s\n.data edgebuf, 32768\n" % _MI_LIB
    text += loop_proc("miCreateETandAET", 7 * scale, "mem", buf="edgebuf",
                      wrap=1024, stride=8)
    text += loop_proc("miZeroArcSetup", 6 * scale, "int")
    text += loop_proc("miInsertEdgeInET", 4 * scale, "mem", buf="edgebuf",
                      wrap=256, stride=8)
    text += loop_proc("miX1Y1X2Y2InRegion", 3 * scale, "branchy")
    return assemble(text, image_name=_MI_LIB)


def _kernel_image(scale):
    text = ".image %s\n.data netbuf, 32768\n" % _KERNEL
    text += loop_proc("in_checksum", 4 * scale, "mem", buf="netbuf",
                      wrap=1024, stride=8)
    text += loop_proc("bcopy", 6 * scale, "stream", buf="netbuf",
                      wrap=2048, stride=8)
    return assemble(text, image_name=_KERNEL)


class X11Perf(Workload):
    """CPU-bound X server tests: one client process driving the server
    procedure mix."""

    name = "x11perf"
    num_cpus = 1
    description = ("x11perf-style X server tests; CPU-bound drawing and "
                   "request dispatch across app, libraries and kernel")

    def __init__(self, scale=8, rounds=50):
        self.scale = scale
        self.rounds = rounds

    def setup(self, machine):
        scale = self.scale
        ffb = machine.load_image(_ffb_image(scale))
        oslib = machine.load_image(_os_image(scale))
        mi = machine.load_image(_mi_image(scale))
        kernel = machine.load_image(_kernel_image(scale))
        externs = {}
        for image in (ffb, oslib, mi, kernel):
            for name, addr in image.symbols.items():
                externs[name] = addr
        app_text = ".image %s\n" % _APP + caller_proc(
            "main",
            ["ReadRequestFromClient", "Dispatch", "miZeroArcSetup",
             "miCreateETandAET", "ffb8ZeroPolyArc", "miInsertEdgeInET",
             "miX1Y1X2Y2InRegion", "ffb8FillPolygon", "in_checksum",
             "bcopy"],
            rounds=self.rounds)
        app = assemble(app_text, image_name=_APP, externs=externs)
        machine.spawn([app, ffb, oslib, mi, kernel], name="x11perf",
                      ctx="x11.request")


def build(scale=8, rounds=50):
    return X11Perf(scale, rounds)
