"""The driver's per-CPU sample-aggregation hash table.

The paper's table is an array of fixed-size buckets of four 16-byte
entries (one 64-byte cache line per bucket); each entry holds a
(PID, PC, EVENT) triple and a count.  A hit increments the count; a miss
evicts one entry -- chosen by a mod counter bumped on every eviction --
into an overflow buffer.  Aggregation reduces the sample stream handed
to the daemon by a factor of 20 or more for most workloads.

Associativity, replacement policy, table size and hash function are all
parameters here because section 5.4 explores exactly that design space
(their conclusion: 6-way plus swap-to-front would cut total cost
10-20%); ``benchmarks/bench_sec54_hashtable.py`` reruns the study.
"""

MOD_COUNTER = "mod-counter"
SWAP_TO_FRONT = "swap-to-front"
LRU = "lru"

POLICIES = (MOD_COUNTER, SWAP_TO_FRONT, LRU)


def _hash_multiplicative(pid, pc, event_ord, mask):
    # Fibonacci-style multiplicative hash of the packed triple.
    key = (pid << 40) ^ (pc >> 2) ^ (event_ord << 56)
    return ((key * 0x9E3779B97F4A7C15) >> 32) & mask


def _hash_xor_fold(pid, pc, event_ord, mask):
    key = (pc >> 2) ^ (pid * 131) ^ (event_ord * 7919)
    return (key ^ (key >> 16)) & mask


HASH_FUNCTIONS = {
    "multiplicative": _hash_multiplicative,
    "xor-fold": _hash_xor_fold,
}


class SampleHashTable:
    """Aggregates (pid, pc, event) samples into counted entries."""

    def __init__(self, buckets=4096, assoc=4, policy=MOD_COUNTER,
                 hash_name="multiplicative"):
        if buckets & (buckets - 1):
            raise ValueError("bucket count must be a power of two")
        if policy not in POLICIES:
            raise ValueError("unknown policy %r" % policy)
        self.num_buckets = buckets
        self.assoc = assoc
        self.policy = policy
        self.hash_name = hash_name
        self._hash = HASH_FUNCTIONS[hash_name]
        self._mask = buckets - 1
        # bucket -> list of [key, count] in slot order.
        self._buckets = [[] for _ in range(buckets)]
        self._mod_counter = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Outcome of the most recent record() call (driver cost model).
        self.last_was_hit = False

    @property
    def capacity(self):
        return self.num_buckets * self.assoc

    def record(self, pid, pc, event_ord, count=1, ctx=None):
        """Aggregate one sample; return an evicted (key, count) or None.

        *ctx* is the interned request-context id (repro.ctx).  When
        None (the default, and the only case when the context dimension
        is off) keys and hashing are the classic 3-tuples, bit
        identical to a build without the dimension; a context id folds
        into the hash and widens the key to a 4-tuple, so per-class
        attribution survives aggregation exactly like the PID does.
        """
        if ctx is None:
            index = self._hash(pid, pc, event_ord, self._mask)
            key = (pid, pc, event_ord)
        else:
            index = self._hash(pid ^ (ctx << 21), pc, event_ord,
                               self._mask)
            key = (pid, pc, event_ord, ctx)
        bucket = self._buckets[index]
        for slot, entry in enumerate(bucket):
            if entry[0] == key:
                entry[1] += count
                self.hits += 1
                self.last_was_hit = True
                if self.policy in (SWAP_TO_FRONT, LRU) and slot != 0:
                    bucket.insert(0, bucket.pop(slot))
                return None
        self.misses += 1
        self.last_was_hit = False
        if len(bucket) < self.assoc:
            if self.policy == MOD_COUNTER:
                bucket.append([key, count])
            else:
                bucket.insert(0, [key, count])
            return None
        self.evictions += 1
        if self.policy == MOD_COUNTER:
            victim_slot = self._mod_counter % self.assoc
            self._mod_counter += 1
            victim = bucket[victim_slot]
            bucket[victim_slot] = [key, count]
        else:
            # SWAP_TO_FRONT and LRU both evict the last (least recent)
            # slot and insert the newcomer at the front.
            victim = bucket.pop()
            bucket.insert(0, [key, count])
        return (victim[0], victim[1])

    def flush(self):
        """Return all resident entries as (key, count) pairs and clear."""
        entries = []
        for bucket in self._buckets:
            for key, count in bucket:
                entries.append((key, count))
            bucket.clear()
        return entries

    def stats(self):
        """Normalized statistics (see :mod:`repro.obs.schema`)."""
        from repro.obs.schema import legacy_hashtable_stats

        return legacy_hashtable_stats(self)

    def metrics(self, prefix="hashtable"):
        """Typed metric snapshot, mergeable across tables/shards."""
        from repro.obs.schema import hashtable_metrics

        return hashtable_metrics(self, prefix=prefix)

    @property
    def miss_rate(self):
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    @property
    def aggregation_factor(self):
        """Average samples folded into each entry leaving the table."""
        leaving = self.misses  # every miss creates exactly one new entry
        total = self.hits + self.misses
        return total / leaving if leaving else float(total or 1)
