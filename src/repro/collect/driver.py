"""The kernel device driver of the collection system.

Responsibilities mirror the paper's section 4.2: field performance-
counter overflow interrupts at high rate, aggregate samples in per-CPU
hash tables, spill evictions to a pair of overflow buffers, and hand
filled buffers to the user-mode daemon.

The *cost* of each interrupt is modelled and charged to the simulated
machine (the pipeline stalls its front end for the handler's cycles), so
the slowdown measured in the Table 3 benchmark is an emergent property
of this code, not an asserted constant.  Cost constants follow the
paper's measurements: a 214-cycle interrupt setup/teardown floor, a
cheap hit path, and a miss path that pays for the eviction and an extra
cache miss.
"""

from dataclasses import dataclass, field

from repro.collect.hashtable import MOD_COUNTER, SampleHashTable
from repro.collect.prng import period_sampler
from repro.cpu.events import EventType
from repro.ctx.context import NULL_CTX, OTHER_ID, ContextTable

#: Event ordinal encoding used in hash-table keys (2 bits in the paper).
EVENT_ORDINAL = {ev: i for i, ev in enumerate(EventType)}
ORDINAL_EVENT = list(EventType)

# Cost model (cycles), calibrated to the paper's Table 4.
INTERRUPT_SETUP = 214      # best-case setup + teardown (paper section 5.2)
HIT_PATH = 120             # hash-table hit handling
MISS_PATH = 420            # eviction + overflow-buffer append
EDGE_PATH = 240            # the second interrupt of a double sample
JITTER_MASK = 63           # deterministic per-PC cache-behaviour jitter


#: The paper's mean CYCLES sampling period (uniform on [60K, 64K]).
PAPER_MEAN_PERIOD = 62 * 1024

#: Histogram bounds for per-flush entry counts (repro.obs).
FLUSH_BOUNDS = tuple(4 ** i for i in range(10))


@dataclass
class DriverConfig:
    """Knobs for the driver (defaults follow the paper)."""

    buckets: int = 4096
    assoc: int = 4
    policy: str = MOD_COUNTER
    hash_name: str = "multiplicative"
    overflow_capacity: int = 8192
    charge_overhead: bool = True
    log_trace: bool = False
    # Sampling configuration.
    mode: str = "default"  # "cycles" | "default" | "mux"
    cycles_period: tuple = (1920, 2048)
    event_period: int = 256
    seed: int = 1
    mux_events: tuple = field(default_factory=lambda: (
        EventType.IMISS, EventType.DMISS, EventType.BRANCHMP))
    # Section 7 "double sampling" prototype: every CYCLES interrupt
    # schedules a second interrupt that captures the next executed PC,
    # producing (from, to) edge samples at the cost of an extra
    # interrupt per sample.
    edge_sampling: bool = False
    # "double" (second interrupt, edges from every sample) or
    # "interpret" (decode + evaluate sampled control transfers; fewer
    # edges but no extra interrupt).
    edge_mode: str = "double"
    # Per-request attribution (repro.ctx): when on, the OS publishes
    # the dispatched process's request class through publish_ctx, and
    # the interned context id joins the sample hash key.  Off by
    # default -- the disabled path is byte-identical to a build
    # without the dimension.
    context: bool = False
    ctx_slots: int = 64
    # Simulations run with periods far below the paper's 60-64K cycles
    # (pure-Python cycle simulation is slow), which would make handler
    # cost dominate the run.  Charged handler cycles are therefore
    # scaled by (simulated period / paper period) so that the measured
    # *slowdown percentage* matches what the full-rate system would
    # exhibit.  None = derive automatically; 1.0 = charge full cost.
    cost_scale: float = None

    def effective_cost_scale(self):
        if self.cost_scale is not None:
            return self.cost_scale
        mean = (self.cycles_period[0] + self.cycles_period[1]) / 2.0
        return mean / PAPER_MEAN_PERIOD


class _CpuState:
    """Per-CPU driver data (the paper's figure 5 'per-cpu data')."""

    __slots__ = ("table", "active", "shadow", "full", "dropped",
                 "spills", "handler_cycles", "hit_cycles", "miss_cycles",
                 "hit_count", "miss_count", "samples", "cost_carry",
                 "edges", "edge_samples", "inflight", "flush_seq",
                 "ctx_reg")

    def __init__(self, config):
        self.table = SampleHashTable(config.buckets, config.assoc,
                                     config.policy, config.hash_name)
        self.active = []
        self.shadow = []
        self.full = []
        self.dropped = 0
        # Flushed-but-unacknowledged batches, keyed by flush sequence
        # number: the driver pins a batch until the daemon acknowledges
        # the merge, so a daemon death mid-drain loses nothing.
        self.inflight = {}
        self.flush_seq = 0
        self.spills = 0
        self.handler_cycles = 0
        self.hit_cycles = 0
        self.miss_cycles = 0
        self.hit_count = 0
        self.miss_count = 0
        self.samples = 0
        self.cost_carry = 0.0
        # (pid, from_pc, to_pc) -> count (double-sampling prototype).
        self.edges = {}
        self.edge_samples = 0
        # The per-CPU context register (repro.ctx): the interned id of
        # the request class running on this CPU, latched on dispatch.
        self.ctx_reg = OTHER_ID


class Driver:
    """The performance-counter device driver."""

    def __init__(self, num_cpus, config=None, obs=None, faults=None):
        from repro.faults.injector import NULL_INJECTOR
        from repro.obs import NULL_OBS

        self.config = config or DriverConfig()
        #: Fault injection (repro.faults); NULL_INJECTOR is zero-cost.
        self.faults = faults or NULL_INJECTOR
        self.cost_scale = self.config.effective_cost_scale()
        #: Request-context interning table (repro.ctx); None when the
        #: context dimension is off -- the hot path tests exactly that.
        self.ctx_table = (ContextTable(self.config.ctx_slots)
                          if self.config.context else None)
        self.cpus = [_CpuState(self.config) for _ in range(num_cpus)]
        self.trace = [] if self.config.log_trace else None
        self._overflow_listeners = []
        self._mux_index = 0
        self._mux_slot = None
        self._machine = None
        self.event_samples = {}
        #: Self-monitoring hooks (repro.obs); NULL_OBS is zero-cost.
        self.obs = obs or NULL_OBS

    # -- installation -----------------------------------------------------

    def install(self, machine):
        """Configure counters on every core and hook the sample sink."""
        config = self.config
        self._machine = machine
        lo, hi = config.cycles_period
        for core in machine.cores:
            core.counters.configure(
                EventType.CYCLES,
                period_sampler(lo, hi, config.seed + core.cpu_id * 7919))
            if config.mode == "default":
                core.counters.configure(
                    EventType.IMISS,
                    period_sampler(config.event_period, config.event_period))
            elif config.mode == "mux":
                self._mux_slot = core.counters.configure(
                    config.mux_events[0],
                    period_sampler(config.event_period, config.event_period))
            if config.edge_sampling:
                core.edge_sink = self.record_edge
                core.edge_interpret = config.edge_mode == "interpret"
        machine.set_sample_sink(self.record)
        if self.ctx_table is not None:
            machine.ctx_sink = self.publish_ctx
        return self

    def publish_ctx(self, cpu_id, pid, ctx):
        """Latch *ctx*'s interned id into *cpu_id*'s context register.

        Called by the OS simulator on every dispatch (the paper-style
        "context register" published on context switch).  Writes to the
        context table only under the guarded NULL_CTX check -- the
        pattern dcpicheck's ``lint/unguarded-ctx-write`` rule enforces.
        """
        if ctx is not NULL_CTX:
            ident = self.ctx_table.intern(ctx)
        else:
            ident = OTHER_ID
        self.cpus[cpu_id].ctx_reg = ident

    def record_edge(self, cpu_id, pid, from_pc, to_pc, time):
        """Aggregate one (from, to) edge sample (double sampling)."""
        state = self.cpus[cpu_id]
        state.edge_samples += 1
        key = (pid, from_pc, to_pc)
        state.edges[key] = state.edges.get(key, 0) + 1

    def flush_edges(self, cpu_id):
        """Drain the aggregated edge samples for *cpu_id*."""
        state = self.cpus[cpu_id]
        edges = state.edges
        state.edges = {}
        return edges

    def rotate_mux(self):
        """Advance the multiplexed counter to the next event type."""
        if self.config.mode != "mux" or self._machine is None:
            return
        self._mux_index = (self._mux_index + 1) % len(self.config.mux_events)
        event = self.config.mux_events[self._mux_index]
        for core in self._machine.cores:
            core.counters.set_event(self._mux_slot, event)

    def add_overflow_listener(self, callback):
        """callback(cpu_id) fires when an overflow buffer fills."""
        self._overflow_listeners.append(callback)

    # -- the interrupt handler ---------------------------------------------

    def record(self, cpu_id, pid, pc, event, time):
        """Handle one counter-overflow interrupt; return handler cycles.

        This is the hot path the paper engineered so carefully; the
        returned cost stalls the interrupted core's front end.
        """
        state = self.cpus[cpu_id]
        state.samples += 1
        self.event_samples[event] = self.event_samples.get(event, 0) + 1
        event_ord = EVENT_ORDINAL[event]
        if self.trace is not None:
            self.trace.append((cpu_id, pid, pc, event_ord))
        if self.ctx_table is None:
            evicted = state.table.record(pid, pc, event_ord)
        else:
            # The context register joins the hash key (alongside the
            # PID), so per-request attribution survives aggregation.
            evicted = state.table.record(pid, pc, event_ord,
                                         ctx=state.ctx_reg)
        jitter = ((pc >> 2) * 2654435761 >> 20) & JITTER_MASK
        # A "miss" is any sample that created a new entry; the eviction
        # variant additionally pays for writing the victim to the
        # overflow buffer (an extra cache line).
        if evicted is not None:
            cost = INTERRUPT_SETUP + MISS_PATH + jitter
            state.miss_count += 1
            state.miss_cycles += cost
            state.active.append(evicted)
            if len(state.active) >= self.config.overflow_capacity:
                self._buffer_full(cpu_id, state)
        elif state.table.last_was_hit:
            cost = INTERRUPT_SETUP + HIT_PATH + jitter
            state.hit_count += 1
            state.hit_cycles += cost
        else:
            # Insert into an empty slot: no eviction, but more work than
            # a pure hit.
            cost = INTERRUPT_SETUP + HIT_PATH + 40 + jitter
            state.miss_count += 1
            state.miss_cycles += cost
        if (self.config.edge_sampling and event is EventType.CYCLES
                and self.config.edge_mode == "double"):
            # Double sampling pays for the second interrupt; the
            # interpretation variant only decodes in the handler
            # (negligible next to the setup cost).
            cost += EDGE_PATH
        state.handler_cycles += cost
        if not self.config.charge_overhead:
            return 0
        # Charge the period-scaled cost, carrying fractional cycles so
        # the long-run average is exact.
        scaled = cost * self.cost_scale + state.cost_carry
        charged = int(scaled)
        state.cost_carry = scaled - charged
        return charged

    def _buffer_full(self, cpu_id, state):
        """Swap buffers and notify the daemon (paper section 4.2.1)."""
        state.spills += 1
        state.full.append(state.active)
        # Swap to the other buffer of the pair; the daemon copies the
        # full one out asynchronously.
        state.active, state.shadow = state.shadow, []
        if self.faults.enabled and self.faults.fires("driver.overflow"):
            # Injected loss burst: the just-filled buffer vanishes
            # before the daemon can copy it out.  Accounted, like every
            # loss in this driver.
            lost = state.full.pop()
            state.dropped += sum(count for _, count in lost)
        if len(state.full) > 2:
            # Both buffers backed up and the daemon hasn't drained: drop.
            # The loss lands in the per-CPU `dropped` counter, which
            # flows into Daemon.stats(), dcpimon and BENCH_*.json --
            # dropped samples are accounted, never silent.
            lost = state.full.pop(0)
            state.dropped += sum(count for _, count in lost)
        for listener in self._overflow_listeners:
            listener(cpu_id)

    # -- the flush path (daemon side) ---------------------------------------

    def begin_flush(self, cpu_id):
        """Start draining *cpu_id*; return (seq, entries).

        Models the IPI-protected flush of section 4.2.3: the handler
        never synchronizes; the flusher interrupts the target CPU.
        The batch stays pinned in the driver (``inflight``) until
        :meth:`ack` -- if the daemon dies between flush and merge, a
        recovered daemon re-reads it via :meth:`recover_inflight`.
        """
        state = self.cpus[cpu_id]
        entries = []
        for buf in state.full:
            entries.extend(buf)
        state.full = []
        entries.extend(state.active)
        state.active = []
        entries.extend(state.table.flush())
        state.flush_seq += 1
        seq = state.flush_seq
        if entries:
            state.inflight[seq] = entries
        if self.obs.enabled:
            self.obs.histogram("driver.flush.entries",
                               bounds=FLUSH_BOUNDS).observe(len(entries))
        return seq, entries

    def ack(self, cpu_id, seq):
        """The daemon durably owns batch *seq*; unpin it."""
        self.cpus[cpu_id].inflight.pop(seq, None)

    def flush(self, cpu_id):
        """One-shot drain of *cpu_id* (begin_flush + immediate ack).

        The historical API, for callers that do not participate in the
        crash-recovery protocol.
        """
        seq, entries = self.begin_flush(cpu_id)
        self.ack(cpu_id, seq)
        return entries

    def recover_inflight(self, cpu_id):
        """Flushed-but-unacked batches as sorted (seq, entries) pairs."""
        return sorted(self.cpus[cpu_id].inflight.items())

    def drop_pending(self, cpu_id):
        """Discard everything pending for *cpu_id*; return samples lost.

        The give-up path when the daemon cannot drain (persistent
        failure): buffers, table and pinned batches are cleared and the
        loss is charged to the per-CPU ``dropped`` counter.
        """
        state = self.cpus[cpu_id]
        lost = 0
        for buf in state.full:
            lost += sum(count for _, count in buf)
        lost += sum(count for _, count in state.active)
        lost += sum(count for _, count in state.table.flush())
        for entries in state.inflight.values():
            lost += sum(count for _, count in entries)
        state.full = []
        state.active = []
        state.inflight = {}
        state.dropped += lost
        return lost

    def drop_all_pending(self):
        """Discard pending state on every CPU (a machine restart)."""
        return sum(self.drop_pending(cpu_id)
                   for cpu_id in range(len(self.cpus)))

    # -- statistics ----------------------------------------------------------

    def stats(self):
        """Aggregate per-CPU statistics (the Table 4 inputs).

        A backward-compatible view over the normalized schema in
        :mod:`repro.obs.schema`; new code should prefer
        :meth:`metrics`.
        """
        from repro.obs.schema import legacy_driver_stats

        return legacy_driver_stats(self)

    def metrics(self):
        """Typed metric snapshot (normalized names, shard-mergeable)."""
        from repro.obs.schema import driver_metrics

        return driver_metrics(self)

    def kernel_memory_bytes(self):
        """Non-pageable kernel memory: tables + overflow buffer pairs."""
        config = self.config
        per_cpu = (config.buckets * config.assoc * 16
                   + 2 * config.overflow_capacity * 16)
        return per_cpu * len(self.cpus)
