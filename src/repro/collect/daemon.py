"""The user-mode daemon of the collection system.

The daemon (paper section 4.3) extracts samples from the driver,
associates each with the executable image loaded at that PC in that
process (via loadmap events from the modified loader), aggregates them
into per-(image, event) profiles, and periodically merges the profiles
into the on-disk database.

Its processing cost is modelled per entry and charged against the
workload when computing overhead: samples that aggregated well in the
driver's hash table are cheap per sample, a high-eviction workload such
as gcc pays close to the full per-entry cost for every sample -- the
effect visible in the paper's Table 4 'daemon cost' column.
"""

from repro.collect.database import ImageProfile
from repro.collect.driver import ORDINAL_EVENT

# Daemon cost model (cycles): per overflow/hash entry processed (three
# hash lookups, merge) and per aggregated sample (copy + accounting).
ENTRY_COST = 1000
PER_SAMPLE_COST = 8

# Resident-memory model (bytes), following the paper's section 5.3
# description of what the daemon allocates.
BASE_RESIDENT = 1_400_000         # text + data + libc
PER_IMAGE = 4096                  # image map + bookkeeping
PER_PROFILE_ENTRY = 16            # hash-table entry per (offset, event)
PER_PROCESS = 512                 # loadmap list per active process


class Daemon:
    """Extracts, maps and merges samples."""

    def __init__(self, loader, periods=None, per_process_images=(),
                 obs=None):
        """*periods* maps EventType -> mean sampling period (for the
        profile metadata the analysis needs).  *per_process_images*
        names images for which separate per-PID profiles are kept in
        addition to the merged ones (paper section 4.3)."""
        from repro.obs import NULL_OBS

        self.loader = loader
        loader.add_listener(self.on_loadmap)
        self.periods = dict(periods or {})
        self.per_process_images = frozenset(per_process_images)
        self._maps = {}       # pid -> list of (start, end, image)
        self.images = {}      # image name -> Image
        self.profiles = {}    # image name -> ImageProfile
        self.process_profiles = {}  # (pid, image name) -> ImageProfile
        self.unknown = ImageProfile(image=None)
        self.unknown_samples = 0
        self.total_samples = 0
        self.entries_processed = 0
        self.cycles = 0
        self.drains = 0
        self.epoch = 0
        self._peak_resident = 0
        #: Self-monitoring hooks (repro.obs); NULL_OBS is zero-cost.
        self.obs = obs or NULL_OBS
        self._resident_gauge = self.obs.gauge("daemon.resident_bytes")

    def _touch_resident(self):
        """Sample resident memory at an allocation-relevant point.

        Called wherever the daemon's footprint can grow -- new
        loadmaps, sample processing, drains -- so the recorded peak
        cannot miss a spike that deflates (reaped process, closed
        epoch) before the next drain ends.
        """
        resident = self.resident_bytes()
        if resident > self._peak_resident:
            self._peak_resident = resident
        self._resident_gauge.set(resident)

    # -- loadmap path ------------------------------------------------------

    def on_loadmap(self, event):
        """Record that *event.pid* mapped *event.image* (loader callback)."""
        self._maps.setdefault(event.pid, []).append(
            (event.image.base, event.image.end, event.image))
        self.images[event.image.name] = event.image
        self._touch_resident()

    def reap(self, pid):
        """Forget a terminated process's mappings."""
        self._maps.pop(pid, None)

    # -- sample path ---------------------------------------------------------

    def drain(self, driver):
        """Pull all pending samples out of *driver* and merge them."""
        self.drains += 1
        for cpu_id in range(len(driver.cpus)):
            entries = driver.flush(cpu_id)
            if entries:
                self._process(entries)
            edges = driver.flush_edges(cpu_id)
            if edges:
                self._process_edges(edges)
        self._touch_resident()

    def _process_edges(self, edges):
        """Merge double-sampling edge samples into image profiles.

        Edges spanning two images (cross-image calls/returns) are
        dropped, as the prototype's analysis only uses intra-procedure
        edges."""
        for (pid, from_pc, to_pc), count in edges.items():
            image = self._find_image(pid, from_pc)
            if image is None or to_pc not in image:
                continue
            profile = self.profiles.get(image.name)
            if profile is None:
                profile = ImageProfile(image, periods=self.periods)
                self.profiles[image.name] = profile
            profile.add_edge(from_pc - image.base, to_pc - image.base,
                             count)

    def _process(self, entries):
        for (pid, pc, event_ord), count in entries:
            event = ORDINAL_EVENT[event_ord]
            self.entries_processed += 1
            self.total_samples += count
            self.cycles += ENTRY_COST + PER_SAMPLE_COST * count
            image = self._find_image(pid, pc)
            if image is None:
                self.unknown_samples += count
                continue
            profile = self.profiles.get(image.name)
            if profile is None:
                profile = ImageProfile(image, periods=self.periods)
                self.profiles[image.name] = profile
            profile.add(event, pc - image.base, count)
            if image.name in self.per_process_images:
                key = (pid, image.name)
                per_pid = self.process_profiles.get(key)
                if per_pid is None:
                    per_pid = ImageProfile(image, periods=self.periods)
                    self.process_profiles[key] = per_pid
                per_pid.add(event, pc - image.base, count)
        self._touch_resident()

    def _find_image(self, pid, pc):
        maps = self._maps.get(pid)
        if maps:
            for start, end, image in maps:
                if start <= pc < end:
                    return image
        # Fall back to the global map (kernel-recognized static images,
        # or processes that predate the daemon).
        return self.loader.image_at(pc)

    # -- persistence -------------------------------------------------------

    def export_profiles(self):
        """Snapshot all merged profiles as plain picklable dicts.

        Returns {image name: {event: {offset: count}}} -- the mergeable
        form consumed by :mod:`repro.collect.parallel`'s reducer, which
        sums shards exactly like :meth:`_process` sums per-CPU hash
        table entries.
        """
        return {
            name: {event: dict(by_offset)
                   for event, by_offset in profile.counts.items()}
            for name, profile in self.profiles.items()
        }

    def merge_to_disk(self, database, epoch=None):
        """Write all in-memory profiles into *database*."""
        # Sample the high-water mark before a following advance_epoch
        # can clear the profiles it reflects.
        self._touch_resident()
        if epoch is None:
            epoch = self.epoch
        for profile in self.profiles.values():
            for event, counts in profile.counts.items():
                period = self.periods.get(event, 1)
                database.save(profile.image.name, event, counts,
                              period, epoch)

    def advance_epoch(self, database=None):
        """Close the current epoch (paper section 4.3.3).

        Flushes the in-memory profiles (to *database* when given),
        clears them, and starts a new non-overlapping epoch.  Returns
        the new epoch number."""
        if database is not None:
            self.merge_to_disk(database)
        else:
            self._touch_resident()
        self.profiles = {}
        self.process_profiles = {}
        self.epoch += 1
        self._resident_gauge.set(self.resident_bytes())
        return self.epoch

    # -- statistics --------------------------------------------------------

    def resident_bytes(self):
        """Estimated resident memory of the daemon right now.

        O(#profiles): each profile tracks its own entry count, so this
        is cheap enough to sample at every allocation-relevant point.
        """
        entries = sum(profile.entry_count()
                      for profile in self.profiles.values())
        return (BASE_RESIDENT
                + PER_IMAGE * len(self.images)
                + PER_PROFILE_ENTRY * entries
                + PER_PROCESS * len(self._maps))

    def peak_resident_bytes(self):
        return max(self._peak_resident, self.resident_bytes())

    def stats(self):
        """Backward-compatible view over :mod:`repro.obs.schema`."""
        from repro.obs.schema import legacy_daemon_stats

        return legacy_daemon_stats(self)

    def metrics(self):
        """Typed metric snapshot (normalized names, shard-mergeable)."""
        from repro.obs.schema import daemon_metrics

        return daemon_metrics(self)
