"""The user-mode daemon of the collection system.

The daemon (paper section 4.3) extracts samples from the driver,
associates each with the executable image loaded at that PC in that
process (via loadmap events from the modified loader), aggregates them
into per-(image, event) profiles, and periodically merges the profiles
into the on-disk database.

Its processing cost is modelled per entry and charged against the
workload when computing overhead: samples that aggregated well in the
driver's hash table are cheap per sample, a high-eviction workload such
as gcc pays close to the full per-entry cost for every sample -- the
effect visible in the paper's Table 4 'daemon cost' column.

Crash recovery (the *continuous* in continuous profiling): drains are
two-phase against the driver (flush batches stay pinned until the
daemon acknowledges the merge) and are journaled to a write-ahead log
before processing; database merges are idempotent checkpoints carrying
per-CPU drain watermarks.  :meth:`Daemon.recover` rebuilds a daemon
from the last committed checkpoint, replays the journal (skipping
anything at or below the watermark, so nothing is counted twice) and
re-drains the driver's pinned batches.  Every sample the pipeline
cannot save is *accounted*: driver-side losses land in the per-CPU
``dropped`` counters, daemon-side losses in ``lost_samples``.
"""

import bisect
import os

from repro.collect.database import ImageProfile
from repro.collect.driver import ORDINAL_EVENT
from repro.cpu.events import EventType
from repro.ctx.ledger import CTX_SCHEMA, ContextLedger
from repro.faults.injector import NULL_INJECTOR, TransientDrainError

# Daemon cost model (cycles): per overflow/hash entry processed (three
# hash lookups, merge) and per aggregated sample (copy + accounting).
ENTRY_COST = 1000
PER_SAMPLE_COST = 8

#: Exponential-backoff base for retried drains (cycles charged to the
#: daemon per attempt; doubled each retry).
BACKOFF_BASE_CYCLES = 10_000

#: Failed flush attempts per CPU per drain before the daemon gives up
#: and tells the driver to drop that CPU's backlog (accounted loss).
MAX_DRAIN_RETRIES = 3

# Resident-memory model (bytes), following the paper's section 5.3
# description of what the daemon allocates.
BASE_RESIDENT = 1_400_000         # text + data + libc
PER_IMAGE = 4096                  # image map + bookkeeping
PER_PROFILE_ENTRY = 16            # hash-table entry per (offset, event)
PER_PROCESS = 512                 # loadmap list per active process


class Daemon:
    """Extracts, maps and merges samples."""

    def __init__(self, loader, periods=None, per_process_images=(),
                 obs=None, faults=None, journal=None,
                 max_drain_retries=MAX_DRAIN_RETRIES, ctx=None):
        """*periods* maps EventType -> mean sampling period (for the
        profile metadata the analysis needs).  *per_process_images*
        names images for which separate per-PID profiles are kept in
        addition to the merged ones (paper section 4.3).  *journal* is
        a :class:`~repro.collect.journal.DrainJournal` enabling replay
        after a crash; *faults* a :class:`~repro.faults.FaultInjector`.
        *ctx* is a :class:`~repro.ctx.ledger.ContextLedger` when the
        session runs with the request-context dimension (None = off:
        nothing context-related is computed or persisted).
        """
        from repro.obs import NULL_OBS

        self.loader = loader
        loader.add_listener(self.on_loadmap)
        self.periods = dict(periods or {})
        self.per_process_images = frozenset(per_process_images)
        self._maps = {}       # pid -> list of (start, end, image)
        self.images = {}      # image name -> Image
        self.profiles = {}    # image name -> ImageProfile
        self.process_profiles = {}  # (pid, image name) -> ImageProfile
        self.unknown = ImageProfile(image=None)
        self.unknown_samples = 0
        self.total_samples = 0
        self.entries_processed = 0
        self.cycles = 0
        self.drains = 0
        self.epoch = 0
        # Robustness accounting.
        self.recoveries = 0
        self.lost_samples = 0      # daemon-side accounted loss
        self.samples_dropped = 0   # driver-side loss, as last observed
        self.drain_retries = 0
        self.drain_failures = 0
        self.loadmaps_dropped = 0
        self.loadmaps_delayed = 0
        self.max_drain_retries = max_drain_retries
        self.journal = journal
        self._pending_loadmaps = []
        self._drained_seq = {}     # cpu_id -> highest merged flush seq
        self._peak_resident = 0
        #: Request-context ledger (repro.ctx); None = dimension off.
        self.ctx = ctx
        #: epoch key -> closed epochs' ledger blobs (persisted with
        #: every checkpoint under the manifest's "ctx" key).
        self._ctx_closed = {}
        # image name -> (sorted proc starts, (start, end, name) rows)
        # for cheap offset -> procedure culprit attribution.
        self._proc_index = {}
        #: Fault injection (repro.faults); NULL_INJECTOR is zero-cost.
        self.faults = faults or NULL_INJECTOR
        #: Self-monitoring hooks (repro.obs); NULL_OBS is zero-cost.
        self.obs = obs or NULL_OBS
        self._resident_gauge = self.obs.gauge("daemon.resident_bytes")

    def _touch_resident(self):
        """Sample resident memory at an allocation-relevant point.

        Called wherever the daemon's footprint can grow -- new
        loadmaps, sample processing, drains -- so the recorded peak
        cannot miss a spike that deflates (reaped process, closed
        epoch) before the next drain ends.
        """
        resident = self.resident_bytes()
        if resident > self._peak_resident:
            self._peak_resident = resident
        self._resident_gauge.set(resident)

    # -- loadmap path ------------------------------------------------------

    def on_loadmap(self, event):
        """Record that *event.pid* mapped *event.image* (loader callback)."""
        if self.faults.enabled:
            spec = self.faults.fires("daemon.loadmap")
            if spec is not None:
                if spec.action == "drop":
                    # A lost loadmap: samples from this mapping fall
                    # back to the loader's global map, or count as
                    # unknown -- degraded attribution, never a crash.
                    self.loadmaps_dropped += 1
                    return
                if spec.action == "delay":
                    self.loadmaps_delayed += 1
                    self._pending_loadmaps.append(event)
                    return
        self._apply_loadmap(event)

    def _apply_loadmap(self, event):
        self._maps.setdefault(event.pid, []).append(
            (event.image.base, event.image.end, event.image))
        self.images[event.image.name] = event.image
        self._touch_resident()

    def reap(self, pid):
        """Forget a terminated process's mappings."""
        self._maps.pop(pid, None)

    # -- sample path ---------------------------------------------------------

    def drain(self, driver):
        """Pull all pending samples out of *driver* and merge them.

        Flushes are retried with exponential backoff on transient
        failures; a CPU whose flush keeps failing has its backlog
        dropped (accounted in the driver's ``dropped`` counter) rather
        than wedging the whole drain.
        """
        self.drains += 1
        if self.ctx is not None and driver.ctx_table is not None:
            # Learn the driver's id -> class bindings before merging
            # entries keyed under those ids.  Ids are monotonic and
            # never reused, so absorbing the table is always safe.
            self.ctx.absorb_table(driver.ctx_table)
        if self._pending_loadmaps:
            pending, self._pending_loadmaps = self._pending_loadmaps, []
            for event in pending:
                self._apply_loadmap(event)
        for cpu_id in range(len(driver.cpus)):
            # A crash here models the daemon dying partway through a
            # drain cycle: earlier CPUs merged and acknowledged, later
            # ones still pinned in the driver.
            self.faults.check("daemon.drain.cpu")
            self._drain_cpu(driver, cpu_id)
            edges = driver.flush_edges(cpu_id)
            if edges:
                self._process_edges(edges)
        self.samples_dropped = sum(s.dropped for s in driver.cpus)
        self._touch_resident()

    def _drain_cpu(self, driver, cpu_id):
        attempts = 0
        while True:
            try:
                self.faults.check("daemon.drain.flush")
                seq, entries = driver.begin_flush(cpu_id)
                break
            except TransientDrainError:
                self.drain_retries += 1
                attempts += 1
                if attempts >= self.max_drain_retries:
                    # Persistent failure: shed this CPU's backlog so the
                    # rest of the system keeps profiling.  The driver
                    # accounts the loss in its `dropped` counter.  No
                    # backoff is charged here -- there is no next
                    # attempt to wait for.
                    self.drain_failures += 1
                    driver.drop_pending(cpu_id)
                    return
                self.cycles += BACKOFF_BASE_CYCLES << min(attempts - 1, 6)
        self._ingest(driver, cpu_id, seq, entries)

    def _ingest(self, driver, cpu_id, seq, entries):
        """Journal, merge and acknowledge one flushed batch."""
        if entries:
            if self.journal is not None:
                self.journal.append(cpu_id, seq, entries)
            # A crash here (batch journaled, merge unacknowledged) is
            # the classic WAL window: replay re-merges it from the
            # journal, the watermark stops the re-drain double count.
            self.faults.check("daemon.drain.merge")
            self._process(entries)
        if seq > self._drained_seq.get(cpu_id, 0):
            self._drained_seq[cpu_id] = seq
        driver.ack(cpu_id, seq)

    def redrain_inflight(self, driver):
        """Merge batches the previous daemon flushed but never acked.

        Batches at or below the recovered watermark were already
        replayed from the journal and are simply acknowledged.
        """
        for cpu_id in range(len(driver.cpus)):
            for seq, entries in driver.recover_inflight(cpu_id):
                if seq <= self._drained_seq.get(cpu_id, 0):
                    driver.ack(cpu_id, seq)
                    continue
                self._ingest(driver, cpu_id, seq, entries)
        self.samples_dropped = sum(s.dropped for s in driver.cpus)

    def _process_edges(self, edges):
        """Merge double-sampling edge samples into image profiles.

        Edges spanning two images (cross-image calls/returns) are
        dropped, as the prototype's analysis only uses intra-procedure
        edges."""
        for (pid, from_pc, to_pc), count in edges.items():
            image = self._find_image(pid, from_pc)
            if image is None or to_pc not in image:
                continue
            profile = self.profiles.get(image.name)
            if profile is None:
                profile = ImageProfile(image, periods=self.periods)
                self.profiles[image.name] = profile
            profile.add_edge(from_pc - image.base, to_pc - image.base,
                             count)

    def _process(self, entries):
        ledger = self.ctx
        for key, count in entries:
            pid, pc, event_ord = key[0], key[1], key[2]
            event = ORDINAL_EVENT[event_ord]
            self.entries_processed += 1
            self.total_samples += count
            self.cycles += ENTRY_COST + PER_SAMPLE_COST * count
            image = self._find_image(pid, pc)
            if ledger is not None:
                # 3-tuple keys (pre-context journals, ctx-less CPUs)
                # land in the "<other>" bucket via OTHER_ID.
                ctx_id = key[3] if len(key) == 4 else 0
                cls = ledger.add_sample(ctx_id, event, count)
                if event is EventType.CYCLES and image is not None:
                    ledger.add_culprit(cls, image.name,
                                       self._procedure_at(image, pc),
                                       count)
            if image is None:
                self.unknown_samples += count
                continue
            profile = self.profiles.get(image.name)
            if profile is None:
                profile = ImageProfile(image, periods=self.periods)
                self.profiles[image.name] = profile
            profile.add(event, pc - image.base, count)
            if image.name in self.per_process_images:
                key = (pid, image.name)
                per_pid = self.process_profiles.get(key)
                if per_pid is None:
                    per_pid = ImageProfile(image, periods=self.periods)
                    self.process_profiles[key] = per_pid
                per_pid.add(event, pc - image.base, count)
        self._touch_resident()

    def _procedure_at(self, image, pc):
        """Name of the procedure of *image* containing *pc*.

        Culprit attribution runs per drained entry, so the per-image
        (start, end, name) rows are indexed once and bisected after.
        """
        index = self._proc_index.get(image.name)
        if index is None:
            rows = sorted((proc.start, proc.end, proc.name)
                          for proc in image.procedures)
            index = ([row[0] for row in rows], rows)
            self._proc_index[image.name] = index
        starts, rows = index
        slot = bisect.bisect_right(starts, pc) - 1
        if slot >= 0 and rows[slot][0] <= pc < rows[slot][1]:
            return rows[slot][2]
        return "<unknown>"

    def _find_image(self, pid, pc):
        maps = self._maps.get(pid)
        if maps:
            for start, end, image in maps:
                if start <= pc < end:
                    return image
        # Fall back to the global map (kernel-recognized static images,
        # or processes that predate the daemon).
        return self.loader.image_at(pc)

    # -- persistence -------------------------------------------------------

    def export_profiles(self):
        """Snapshot all merged profiles as plain picklable dicts.

        Returns {image name: {event: {offset: count}}} -- the mergeable
        form consumed by :mod:`repro.collect.parallel`'s reducer, which
        sums shards exactly like :meth:`_process` sums per-CPU hash
        table entries.
        """
        return {
            name: {event: dict(by_offset)
                   for event, by_offset in profile.counts.items()}
            for name, profile in self.profiles.items()
        }

    def _checkpoint_meta(self):
        """Recovery watermarks committed with every checkpoint."""
        return {
            "epoch": self.epoch,
            "total_samples": self.total_samples,
            "unknown_samples": self.unknown_samples,
            "entries_processed": self.entries_processed,
            "lost_samples": self.lost_samples,
            "recoveries": self.recoveries,
            "drains": self.drains,
            "drain_retries": self.drain_retries,
            "drain_failures": self.drain_failures,
            "loadmaps_dropped": self.loadmaps_dropped,
            "drained_seq": {str(cpu): seq
                            for cpu, seq in self._drained_seq.items()},
        }

    def _ctx_blob(self):
        """The manifest's ``ctx`` blob: every epoch's ledger, or None.

        Committed by :meth:`merge_to_disk` in the same atomic manifest
        rename as the samples (the fleet-ledger pattern), so samples
        and their attribution are always durable together.
        """
        if self.ctx is None:
            return None
        epochs = dict(self._ctx_closed)
        epochs["%04d" % self.epoch] = self.ctx.to_meta()
        return {"schema": CTX_SCHEMA, "epochs": epochs}

    def _owns_journal(self, database):
        return (self.journal is not None
                and os.path.dirname(self.journal.path)
                == getattr(database, "root", None))

    def merge_to_disk(self, database, epoch=None):
        """Checkpoint all in-memory profiles into *database*.

        The in-memory profiles are the epoch's cumulative state, so
        this *replaces* the epoch on disk (an idempotent checkpoint:
        running it twice, or re-running it after a crash, can never
        double-count).  On success the drain journal is truncated --
        everything it guarded is now durable.
        """
        # Sample the high-water mark before a following advance_epoch
        # can clear the profiles it reflects.
        self._touch_resident()
        if epoch is None:
            epoch = self.epoch
        # A crash here models dying between a drain and the merge.
        self.faults.check("daemon.checkpoint")
        database.checkpoint(self.export_profiles(), self.periods, epoch,
                            meta=self._checkpoint_meta(),
                            ctx=self._ctx_blob())
        if self._owns_journal(database):
            self.journal.truncate()

    def extract_delta(self):
        """Close the current epoch and return it as a shippable delta.

        Returns ``(epoch, profiles, periods, ctx_meta)`` where
        *profiles* is the plain-dict export of every sample merged
        since the last extraction (exactly the samples of the closed
        epoch: the in-memory profiles are cleared by the epoch advance,
        so two consecutive deltas never overlap) and *ctx_meta* is the
        closed epoch's request-context ledger
        (:meth:`~repro.ctx.ledger.ContextLedger.to_meta`; None when the
        context dimension is off).  This is the per-machine daemon's
        unit of shipment in :mod:`repro.fleet` -- the "new samples
        since last epoch" a fleet collector sends upstream, attribution
        included, instead of keeping a local database.
        """
        epoch = self.epoch
        profiles = self.export_profiles()
        periods = dict(self.periods)
        ctx_meta = self.ctx.to_meta() if self.ctx is not None else None
        self.advance_epoch()
        return epoch, profiles, periods, ctx_meta

    def advance_epoch(self, database=None):
        """Close the current epoch (paper section 4.3.3).

        Flushes the in-memory profiles (to *database* when given),
        clears them, and starts a new non-overlapping epoch.  Returns
        the new epoch number."""
        if database is not None:
            self.merge_to_disk(database)
        else:
            self._touch_resident()
        self.profiles = {}
        self.process_profiles = {}
        if self.ctx is not None:
            # Close the epoch's ledger alongside its profiles; the new
            # epoch starts attribution from scratch.
            self._ctx_closed["%04d" % self.epoch] = self.ctx.to_meta()
            self.ctx = ContextLedger()
        self.epoch += 1
        if database is not None:
            # Re-commit the watermarks under the new epoch so a crash
            # from here recovers into the new (empty) epoch instead of
            # resurrecting the closed one.
            database.update_checkpoint(self._checkpoint_meta())
        self._resident_gauge.set(self.resident_bytes())
        return self.epoch

    @classmethod
    def recover(cls, loader, database, journal=None, periods=None,
                per_process_images=(), obs=None, faults=None,
                max_drain_retries=MAX_DRAIN_RETRIES, ctx=None):
        """Rebuild a daemon from *database*'s last durable checkpoint.

        Reloads the current epoch's committed profiles, seeds counters
        and per-CPU watermarks from the checkpoint metadata, then
        replays the drain journal -- skipping batches at or below the
        watermark so replay is idempotent.  Per-PID profiles are not
        persisted and restart empty for the epoch.  The caller should
        follow up with :meth:`redrain_inflight` to pick up batches the
        dead daemon left pinned in the driver.

        *ctx* is a seed :class:`~repro.ctx.ledger.ContextLedger` for
        context-enabled sessions, carrying the surviving driver
        table's id bindings.  It becomes the ledger when the crash
        predates the first checkpoint (no ``ctx`` blob on disk yet);
        with a blob, its bindings are unioned into the restored ledger
        so journal batches newer than the checkpoint -- whose ids were
        bound only in the live driver table -- still attribute.  Both
        are safe because ids are monotonic and never reused.
        """
        daemon = cls(loader, periods=periods,
                     per_process_images=per_process_images, obs=obs,
                     faults=faults, journal=journal,
                     max_drain_retries=max_drain_retries)
        meta = database.checkpoint_meta() or {}
        daemon.epoch = meta.get("epoch", 0)
        daemon.total_samples = meta.get("total_samples", 0)
        daemon.unknown_samples = meta.get("unknown_samples", 0)
        daemon.entries_processed = meta.get("entries_processed", 0)
        daemon.lost_samples = meta.get("lost_samples", 0)
        daemon.drains = meta.get("drains", 0)
        daemon.drain_retries = meta.get("drain_retries", 0)
        daemon.drain_failures = meta.get("drain_failures", 0)
        daemon.loadmaps_dropped = meta.get("loadmaps_dropped", 0)
        daemon.recoveries = meta.get("recoveries", 0) + 1
        daemon._drained_seq = {
            int(cpu): seq
            for cpu, seq in meta.get("drained_seq", {}).items()}
        blob = database.get_meta("ctx")
        if blob is not None:
            # The dead daemon ran with the context dimension: rebuild
            # the current epoch's ledger (journal replay below re-adds
            # whatever the checkpoint missed) and keep closed epochs
            # as committed.
            epochs = dict(blob.get("epochs", {}))
            current = epochs.pop("%04d" % daemon.epoch, None)
            daemon.ctx = ContextLedger.from_meta(current)
            daemon._ctx_closed = epochs
            if ctx is not None:
                for ident, name in ctx.ids.items():
                    daemon.ctx.ids.setdefault(ident, name)
        elif ctx is not None:
            daemon.ctx = ctx
        images = {image.name: image
                  for image in getattr(loader, "images", [])}
        for image_name, event, counts, period in (
                database.load_all(daemon.epoch)):
            image = images.get(image_name)
            if image is None:
                # The image vanished across the restart: its committed
                # counts cannot be extended in memory and the next
                # checkpoint would silently shed them -- account them
                # as lost instead.
                daemon.lost_samples += sum(counts.values())
                continue
            profile = daemon.profiles.get(image_name)
            if profile is None:
                profile = ImageProfile(image, periods=daemon.periods)
                daemon.profiles[image_name] = profile
            for offset, count in counts.items():
                profile.add(event, offset, count)
        if journal is not None:
            for cpu_id, seq, entries in journal.replay():
                if seq <= daemon._drained_seq.get(cpu_id, 0):
                    continue
                daemon._process(entries)
                daemon._drained_seq[cpu_id] = seq
        daemon._touch_resident()
        return daemon

    # -- statistics --------------------------------------------------------

    def resident_bytes(self):
        """Estimated resident memory of the daemon right now.

        O(#profiles): each profile tracks its own entry count, so this
        is cheap enough to sample at every allocation-relevant point.
        """
        entries = sum(profile.entry_count()
                      for profile in self.profiles.values())
        return (BASE_RESIDENT
                + PER_IMAGE * len(self.images)
                + PER_PROFILE_ENTRY * entries
                + PER_PROCESS * len(self._maps))

    def peak_resident_bytes(self):
        return max(self._peak_resident, self.resident_bytes())

    def stats(self):
        """Backward-compatible view over :mod:`repro.obs.schema`."""
        from repro.obs.schema import legacy_daemon_stats

        return legacy_daemon_stats(self)

    def metrics(self):
        """Typed metric snapshot (normalized names, shard-mergeable)."""
        from repro.obs.schema import daemon_metrics

        return daemon_metrics(self)
