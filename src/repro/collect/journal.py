"""The daemon's drain journal (write-ahead log).

Before the daemon merges a flushed batch of driver entries into its
in-memory profiles, it appends the batch here.  After a crash, a
recovered daemon replays the journal on top of the last committed
database checkpoint; per-CPU flush sequence numbers recorded with each
batch make the replay idempotent (anything at or below the
checkpoint's watermark is skipped), so no sample is ever counted
twice.  Each checkpoint truncates the journal -- it only ever holds
the window since the last durable merge.

The format is deliberately dumb: one JSON record per line, prefixed by
a CRC32 of the record.  Appends are flushed and fsynced; a torn tail
(the one record being written when the machine died) fails its CRC and
is discarded, which is exactly the crash semantics a real WAL gives.
"""

import json
import os
import zlib


class DrainJournal:
    """Append/replay/truncate log of drained sample batches."""

    def __init__(self, path):
        self.path = os.fspath(path)
        #: Torn/corrupt trailing records discarded by the last replay.
        self.torn_records = 0

    def append(self, cpu_id, seq, entries):
        """Durably record one flushed batch before it is merged.

        *entries* is the driver's flush payload:
        ``[((pid, pc, event_ord[, ctx]), count), ...]`` -- keys are
        3-tuples, or 4-tuples when the request-context dimension
        (repro.ctx) is on; the key is stored positionally with the
        count last, so 3-tuple records are byte-identical to the
        pre-context format.
        """
        record = {
            "cpu": cpu_id,
            "seq": seq,
            "entries": [list(key) + [count] for key, count in entries],
        }
        payload = json.dumps(record, sort_keys=True,
                             separators=(",", ":"))
        line = "%08x %s\n" % (zlib.crc32(payload.encode("utf-8")),
                              payload)
        with open(self.path, "a") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def replay(self):
        """Yield (cpu_id, seq, entries) for every intact record.

        Stops at the first corrupt record (a torn tail); anything
        after it is unreliable and discarded.
        """
        self.torn_records = 0
        if not os.path.exists(self.path):
            return
        with open(self.path) as handle:
            for line in handle:
                line = line.rstrip("\n")
                if not line:
                    continue
                crc_hex, _, payload = line.partition(" ")
                try:
                    crc = int(crc_hex, 16)
                    if zlib.crc32(payload.encode("utf-8")) != crc:
                        raise ValueError("journal checksum mismatch")
                    record = json.loads(payload)
                    entries = [(tuple(row[:-1]), row[-1])
                               for row in record["entries"]]
                    cpu_id, seq = record["cpu"], record["seq"]
                except (ValueError, KeyError, TypeError):
                    self.torn_records += 1
                    return
                yield cpu_id, seq, entries

    def truncate(self):
        """Drop all records (called after a durable checkpoint)."""
        tmp = self.path + ".tmp"
        with open(tmp, "w") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
