"""Parallel sharded profiling runs and the deterministic shard reducer.

The paper's collector is parallel by construction: every CPU owns a
private hash table, and the daemon merges whatever order the drains
happen to deliver (sections 4.2-4.3).  This module lifts that shape one
level up.  A *shard* is one complete profiling run -- a (workload,
seed, mode) triple -- executed as a full :class:`ProfileSession` inside
a worker process.  Each worker ships back its per-image sample maps in
plain-dict (picklable) form, and :func:`merge_shards` reduces them
exactly like the daemon reduces per-CPU tables: commutative integer
sums keyed by (image, event, offset).  The merged profile is therefore
independent of worker count, scheduling, and completion order, which
``tests/test_parallel.py`` verifies byte-for-byte against a serial run.

:class:`ParallelSessionRunner` owns the process pool; its
:meth:`~ParallelSessionRunner.map` helper is also the substrate the
``dcpibench`` benchmark harness (:mod:`repro.tools.benchrunner`) uses
to fan whole benchmark files out across workers.
"""

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Optional

from repro.collect.database import (FORMAT_COMPACT, ProfileDatabase,
                                    encode_profile)
from repro.collect.session import ProfileSession, SessionConfig
from repro.cpu.config import MachineConfig
from repro.ctx import merge_ledger_meta
from repro.obs import ObsConfig, merge_metrics


@dataclass(frozen=True)
class ShardSpec:
    """One unit of profiling work: a (workload, seed, mode) run.

    ``workload`` is a registry name (:mod:`repro.workloads.registry`);
    workers re-instantiate it so images link fresh per machine.
    """

    workload: str
    seed: int = 1
    mode: str = "default"
    max_instructions: Optional[int] = 80_000
    cycles_period: tuple = (240, 256)
    event_period: int = 64
    #: also run the unprofiled baseline (same seed) for overhead math.
    baseline: bool = False
    #: run with self-monitoring enabled (repro.obs): the shard ships
    #: back its trace spans and a richer metric registry.
    obs: bool = False
    #: fault injection (repro.faults.FaultPlan); chaos shards carry
    #: their plan into the worker process -- plans are frozen/picklable.
    faults: Optional[object] = None
    #: run with the request-context dimension (repro.ctx): the shard
    #: ships back its context-ledger blob for order-independent merge.
    context: bool = False

    def label(self):
        return "%s/seed%d/%s" % (self.workload, self.seed, self.mode)


@dataclass
class ShardResult:
    """What one worker ships back: mergeable maps plus run statistics."""

    spec: ShardSpec
    #: {image name: {event: {offset: count}}} (plain picklable dicts).
    profiles: dict
    #: {event: mean sampling period} (profile metadata).
    periods: dict
    #: combined driver + daemon statistics of the profiled run.
    stats: dict
    instructions: int
    cycles: int
    baseline_cycles: Optional[int] = None
    baseline_instructions: Optional[int] = None
    elapsed: float = 0.0
    #: typed self-monitoring snapshot (repro.obs.schema names), always
    #: present; reduced across shards exactly like the profiles.
    obs: Optional[dict] = None
    #: Chrome-trace events of the shard's run (obs-enabled shards).
    trace_events: Optional[list] = None
    #: context-ledger blob (ContextLedger.to_meta) of ctx-enabled
    #: shards; None when the shard ran without the context dimension.
    ctx: Optional[dict] = None

    @property
    def samples(self):
        return self.stats.get("driver_samples", 0)

    def overhead_pct(self):
        """Slowdown percent vs the baseline run, daemon cost included.

        Follows the Table 3 methodology: daemon cycles are charged at
        the period-scaled rate and amortized across the CPUs.  Returns
        None when the shard did not run a baseline.
        """
        if not self.baseline_cycles:
            return None
        scale = self.stats.get("scaled_daemon_cycles", None)
        if scale is None:
            scale = (self.stats.get("daemon_cycles", 0)
                     * self.stats.get("cost_scale", 1.0)
                     / max(1, self.stats.get("num_cpus", 1)))
        adjusted = self.cycles + scale
        return (adjusted - self.baseline_cycles) / self.baseline_cycles * 100.0


def run_shard(spec):
    """Execute one shard start-to-finish; the pool's worker function.

    Runs in a separate process under the pool, but is equally callable
    in-process -- the serial path of :class:`ParallelSessionRunner`
    uses the exact same code, which is what makes serial/parallel
    byte-identity a meaningful test.
    """
    from repro.workloads.registry import get_workload

    started = time.perf_counter()
    workload = get_workload(spec.workload)
    machine_config = MachineConfig(num_cpus=workload.num_cpus)
    session = ProfileSession(
        machine_config,
        SessionConfig(mode=spec.mode, seed=spec.seed,
                      cycles_period=spec.cycles_period,
                      event_period=spec.event_period,
                      obs=ObsConfig(enabled=True) if spec.obs else None,
                      faults=spec.faults, context=spec.context))
    result = session.run(workload, max_instructions=spec.max_instructions)
    export = result.export_mergeable()
    stats = export["stats"]
    stats["cost_scale"] = result.driver.cost_scale
    stats["num_cpus"] = len(result.machine.cores)
    stats["scaled_daemon_cycles"] = (
        result.daemon.cycles * result.driver.cost_scale
        / len(result.machine.cores))
    baseline_cycles = baseline_instructions = None
    if spec.baseline:
        base = session.run_baseline(
            get_workload(spec.workload),
            max_instructions=spec.max_instructions)
        baseline_cycles = base.cycles
        baseline_instructions = base.instructions
    return ShardResult(
        spec=spec,
        profiles=export["profiles"],
        periods=export["periods"],
        stats=stats,
        instructions=result.instructions,
        cycles=result.cycles,
        baseline_cycles=baseline_cycles,
        baseline_instructions=baseline_instructions,
        elapsed=time.perf_counter() - started,
        obs=export["obs"],
        trace_events=(list(result.obs.trace.events)
                      if result.obs.enabled and result.obs.trace.enabled
                      else None),
        ctx=export["ctx"])


def merge_shards(shards):
    """Reduce shard sample maps into one {image: {event: {offset: n}}}.

    Accepts :class:`ShardResult` objects or bare profile maps.  The
    reduction is a commutative, associative integer sum over
    (image, event, offset) keys -- the same invariant the daemon relies
    on when it drains per-CPU hash tables in arbitrary order -- so any
    permutation or regrouping of *shards* produces an identical result
    (property-tested with hypothesis in ``tests/test_parallel.py``).
    """
    merged = {}
    for shard in shards:
        profiles = getattr(shard, "profiles", shard)
        for image, by_event in profiles.items():
            dest_image = merged.setdefault(image, {})
            for event, by_offset in by_event.items():
                dest = dest_image.setdefault(event, {})
                for offset, count in by_offset.items():
                    dest[offset] = dest.get(offset, 0) + count
    return merged


def merge_shard_obs(shards):
    """Reduce per-shard metric registries into one typed snapshot.

    Counters sum, gauges keep the maximum, histograms add bucket-wise
    (:func:`repro.obs.merge_metrics`) -- commutative and associative,
    so the reduced registry is independent of shard order and grouping
    exactly like the profile merge.
    """
    return merge_metrics([getattr(shard, "obs", shard)
                          for shard in shards])


def merge_shard_ctx(shards):
    """Reduce per-shard context ledgers into one blob (or None).

    Delegates to :func:`repro.ctx.merge_ledger_meta` -- commutative
    sums keyed by class *name*, per-request entries unioned by their
    shard-unique ``seed:pid`` keys -- so the reduced ledger, like the
    profile merge, is independent of shard order and grouping.
    Returns None when no shard carried a ledger (contexts off).
    """
    metas = [getattr(shard, "ctx", shard) for shard in shards]
    metas = [meta for meta in metas if meta is not None]
    if not metas:
        return None
    return merge_ledger_meta(metas)


def merge_periods(shards):
    """Collect the per-event sampling periods used across *shards*.

    Shards configured identically agree on periods; on disagreement
    (e.g. a period-sweep experiment) the maximum is kept, which is the
    conservative choice for sample->cycle scaling.
    """
    periods = {}
    for shard in shards:
        for event, period in getattr(shard, "periods", {}).items():
            periods[event] = max(period, periods.get(event, 0))
    return periods


class MergedProfiles:
    """The reducer's output: merged counts plus canonical serialization."""

    def __init__(self, counts, periods=None):
        self.counts = counts
        self.periods = periods or {}

    def images(self):
        return sorted(self.counts)

    def total(self, event=None):
        """Total merged samples, optionally restricted to *event*."""
        total = 0
        for by_event in self.counts.values():
            for ev, by_offset in by_event.items():
                if event is None or ev == event:
                    total += sum(by_offset.values())
        return total

    def encode(self, image, event, fmt=FORMAT_COMPACT, epoch=0):
        """Canonical on-disk bytes for one (image, event) profile.

        ``encode_profile`` writes offsets in sorted order, so two
        merges that agree on the counts agree on the bytes -- the
        byte-identity oracle used by the serial-vs-parallel tests.
        """
        counts = self.counts.get(image, {}).get(event, {})
        period = self.periods.get(event, 1)
        return encode_profile(counts, image, event, int(period), fmt, epoch)

    def encode_all(self, fmt=FORMAT_COMPACT, epoch=0):
        """{(image, event): canonical bytes} for every stored profile."""
        blobs = {}
        for image in self.images():
            for event in sorted(self.counts[image], key=str):
                blobs[(image, str(event))] = self.encode(
                    image, event, fmt, epoch)
        return blobs

    def save(self, database, epoch=0):
        """Merge everything into a :class:`ProfileDatabase`.

        *database* may also be a directory path, in which case a
        database rooted there is created on the fly.
        """
        if isinstance(database, (str, os.PathLike)):
            database = ProfileDatabase(os.fspath(database))
        for image in self.images():
            for event, by_offset in self.counts[image].items():
                database.save(image, event, by_offset,
                              self.periods.get(event, 1), epoch)


@dataclass
class ParallelRunResult:
    """Everything a sharded run produced."""

    shards: list
    merged: MergedProfiles
    workers: int
    elapsed: float = 0.0
    #: wall-clock cost of the shard reduction (profiles + registries).
    merge_s: float = 0.0
    #: shard metric registries reduced into one typed snapshot.
    obs: Optional[dict] = None
    #: shard context ledgers reduced into one blob (None = ctx off).
    ctx: Optional[dict] = None

    def by_label(self):
        return {shard.spec.label(): shard for shard in self.shards}

    def total_samples(self):
        return sum(shard.samples for shard in self.shards)

    def total_instructions(self):
        return sum(shard.instructions for shard in self.shards)


def _call(func_item):
    func, item = func_item
    return func(item)


class ParallelSessionRunner:
    """Shard profiling runs across a ``multiprocessing`` pool.

    ``workers <= 1`` degrades to a serial in-process loop running the
    identical worker function, so the two paths are interchangeable --
    and comparable: merged profiles are byte-identical either way.
    """

    def __init__(self, workers=None, mp_context=None):
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = max(1, int(workers))
        self._context = (multiprocessing.get_context(mp_context)
                         if isinstance(mp_context, (str, type(None)))
                         else mp_context)

    def map(self, func, items, chunksize=1):
        """Run ``func`` over *items*, in the pool when it pays off.

        *func* must be a module-level callable and *items* picklable
        when more than one worker is in play.  Also used by
        ``dcpibench`` to spread benchmark files across processes.
        """
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            return [func(item) for item in items]
        processes = min(self.workers, len(items))
        with self._context.Pool(processes=processes) as pool:
            return pool.map(_call, [(func, item) for item in items],
                            chunksize=chunksize)

    def run(self, shards):
        """Execute *shards* and reduce them; return ParallelRunResult.

        The shard list order is preserved in the result, but the merge
        itself is order-independent by construction.
        """
        shards = list(shards)
        started = time.perf_counter()
        results = self.map(run_shard, shards)
        merge_started = time.perf_counter()
        merged = MergedProfiles(merge_shards(results),
                                merge_periods(results))
        obs = merge_shard_obs(results)
        ctx = merge_shard_ctx(results)
        merge_s = time.perf_counter() - merge_started
        return ParallelRunResult(
            shards=results, merged=merged, workers=self.workers,
            elapsed=time.perf_counter() - started,
            merge_s=merge_s, obs=obs, ctx=ctx)


def shard_matrix(workloads, seeds=(1,), modes=("default",),
                 max_instructions=80_000, baseline=False, **overrides):
    """Build the (workload x seed x mode) shard list, paper-style."""
    return [ShardSpec(workload=workload, seed=seed, mode=mode,
                      max_instructions=max_instructions,
                      baseline=baseline, **overrides)
            for workload in workloads
            for seed in seeds
            for mode in modes]
