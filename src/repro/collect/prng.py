"""Carta's minimal-standard pseudo-random number generator.

The paper (section 4.1.1, reference [4]) randomizes the sampling period
by writing a pseudo-random value into the performance counter after each
interrupt, drawing the period uniformly from [60K, 64K] when monitoring
CYCLES.  This module implements the same Park-Miller/Carta generator
(x' = 16807*x mod (2^31 - 1)) and the uniform period sampler built on it.
"""

_MODULUS = (1 << 31) - 1
_MULTIPLIER = 16807


class CartaRandom:
    """The minimal-standard linear congruential generator."""

    def __init__(self, seed=1):
        seed = int(seed) % _MODULUS
        if seed == 0:
            seed = 1
        self._state = seed

    def next(self):
        """Return the next raw value in [1, 2^31 - 2]."""
        # Carta's implementation splits the product to avoid 64-bit
        # overflow on 1990s hardware; Python ints make the modmul direct.
        self._state = (self._state * _MULTIPLIER) % _MODULUS
        return self._state

    def uniform_int(self, lo, hi):
        """Return an integer uniformly distributed in [lo, hi]."""
        span = hi - lo + 1
        return lo + self.next() % span


def period_sampler(lo, hi, seed=1):
    """Return a zero-argument callable yielding random periods in [lo, hi].

    This is what the driver installs into each counter slot; with
    ``lo == hi`` the period is deterministic (useful in tests).
    """
    if lo == hi:
        return lambda: lo
    rng = CartaRandom(seed)
    return lambda: rng.uniform_int(lo, hi)
