"""The paper's data-collection system: driver, daemon, profile database."""

from repro.collect.daemon import Daemon
from repro.collect.database import ImageProfile, ProfileDatabase
from repro.collect.driver import Driver, DriverConfig
from repro.collect.parallel import (MergedProfiles, ParallelSessionRunner,
                                    ShardSpec, merge_shards, shard_matrix)
from repro.collect.session import ProfileSession, SessionConfig

__all__ = [
    "ImageProfile",
    "ProfileDatabase",
    "Driver",
    "DriverConfig",
    "Daemon",
    "MergedProfiles",
    "ParallelSessionRunner",
    "ShardSpec",
    "merge_shards",
    "shard_matrix",
    "ProfileSession",
    "SessionConfig",
]
