"""Session bundles: everything the offline tools need, on disk.

A bundle directory holds the profile database (epoch files), the linked
images (JSON), and metadata (sampling periods, collection stats), so
``dcpiprof``/``dcpicalc``/``dcpistats`` can run long after the profiled
machine is gone -- the paper's "analysis is done offline" property.

Loading degrades gracefully: corrupt profile files are quarantined by
the database and reported through the meta dict's ``warnings`` list
instead of aborting, and the ``loss`` block carries the collection
run's accounted sample loss so the analysis tools can flag
low-confidence results.
"""

import json
import os

from repro.alpha.serialize import load_images, save_images
from repro.collect.database import (CorruptProfileError, ImageProfile,
                                    ProfileDatabase)


def save_bundle(result, path):
    """Persist a :class:`SessionResult` into directory *path*."""
    os.makedirs(path, exist_ok=True)
    images = [p.image for p in result.daemon.profiles.values()
              if p.image is not None]
    save_images(images, os.path.join(path, "images.json"))
    database = ProfileDatabase(os.path.join(path, "db"))
    result.daemon.merge_to_disk(database)
    stats = _jsonable(result.stats())
    driver_samples = stats.get("driver_samples", 0)
    dropped = stats.get("driver_dropped", 0)
    lost = stats.get("daemon_lost_samples", 0)
    meta = {
        "periods": {str(ev): period
                    for ev, period in result.daemon.periods.items()},
        "stats": stats,
        # Loss accounting for graceful analysis degradation.
        "loss": {
            "samples_dropped": dropped + lost,
            "loss_rate": ((dropped + lost) / driver_samples
                          if driver_samples else 0.0),
            "recoveries": stats.get("daemon_recoveries", 0),
            "quarantined_samples": database.quarantined_samples(),
        },
    }
    with open(os.path.join(path, "meta.json"), "w") as handle:
        json.dump(meta, handle, indent=2)
    return path


def load_bundle(path):
    """Load a bundle; returns ({image name: ImageProfile}, meta dict).

    Corrupt profiles are skipped (and quarantined by the database);
    the names of skipped files are returned in ``meta["warnings"]``.
    """
    from repro.cpu.events import EventType

    images = {img.name: img
              for img in load_images(os.path.join(path, "images.json"))}
    with open(os.path.join(path, "meta.json")) as handle:
        meta = json.load(handle)
    periods = {EventType(name): period
               for name, period in meta["periods"].items()}
    database = ProfileDatabase(os.path.join(path, "db"))
    profiles = {}
    warnings = list(meta.get("warnings", []))
    for image_name, event in list(database.profiles()):
        try:
            counts, _ = database.load(image_name, event)
        except (CorruptProfileError, FileNotFoundError) as exc:
            warnings.append("skipped %s@%s: %s"
                            % (image_name, event, exc))
            continue
        # Pre-manifest databases listed flattened names ('/' -> '_');
        # match loosely.
        image = images.get(image_name)
        if image is None:
            for candidate in images.values():
                if candidate.name.replace("/", "_").strip("_") == image_name:
                    image = candidate
                    break
        if image is None:
            warnings.append("no image metadata for %r; profile skipped"
                            % image_name)
            continue
        profile = profiles.setdefault(
            image.name, ImageProfile(image, periods=periods))
        for offset, count in counts.items():
            profile.add(event, offset, count)
    warnings.extend(database.warnings)
    meta["warnings"] = warnings
    return profiles, meta


def _jsonable(data):
    return {k: (float(v) if isinstance(v, float) else v)
            for k, v in data.items()}
