"""Session bundles: everything the offline tools need, on disk.

A bundle directory holds the profile database (epoch files), the linked
images (JSON), and metadata (sampling periods, collection stats), so
``dcpiprof``/``dcpicalc``/``dcpistats`` can run long after the profiled
machine is gone -- the paper's "analysis is done offline" property.
"""

import json
import os

from repro.alpha.serialize import load_images, save_images
from repro.collect.database import ImageProfile, ProfileDatabase


def save_bundle(result, path):
    """Persist a :class:`SessionResult` into directory *path*."""
    os.makedirs(path, exist_ok=True)
    images = [p.image for p in result.daemon.profiles.values()
              if p.image is not None]
    save_images(images, os.path.join(path, "images.json"))
    database = ProfileDatabase(os.path.join(path, "db"))
    result.daemon.merge_to_disk(database)
    meta = {
        "periods": {str(ev): period
                    for ev, period in result.daemon.periods.items()},
        "stats": _jsonable(result.stats()),
    }
    with open(os.path.join(path, "meta.json"), "w") as handle:
        json.dump(meta, handle, indent=2)
    return path


def load_bundle(path):
    """Load a bundle; returns ({image name: ImageProfile}, meta dict)."""
    from repro.cpu.events import EventType

    images = {img.name: img
              for img in load_images(os.path.join(path, "images.json"))}
    with open(os.path.join(path, "meta.json")) as handle:
        meta = json.load(handle)
    periods = {EventType(name): period
               for name, period in meta["periods"].items()}
    database = ProfileDatabase(os.path.join(path, "db"))
    profiles = {}
    for image_name, event in database.profiles():
        counts, _ = database.load(image_name, event)
        # Database filenames flatten '/' to '_'; match loosely.
        image = images.get(image_name)
        if image is None:
            for candidate in images.values():
                if candidate.name.replace("/", "_").strip("_") == image_name:
                    image = candidate
                    break
        if image is None:
            continue
        profile = profiles.setdefault(
            image.name, ImageProfile(image, periods=periods))
        for offset, count in counts.items():
            profile.add(event, offset, count)
    return profiles, meta


def _jsonable(data):
    return {k: (float(v) if isinstance(v, float) else v)
            for k, v in data.items()}
