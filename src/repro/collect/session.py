"""Profiling sessions: machine + driver + daemon, orchestrated.

A :class:`ProfileSession` is the top-level user API: give it a workload
(a callable that spawns processes on a fresh machine) and it runs the
workload under the full collection system -- counters with randomized
periods, the driver's hash tables, the daemon's drain/merge cycle --
and returns the profiles plus every statistic the paper's evaluation
tables need.

``run_baseline`` runs the identical workload with profiling disabled,
so Table 3's slowdown is (profiled cycles - base cycles) / base cycles
on bit-identical instruction streams.
"""

import os
from dataclasses import dataclass, replace
from typing import Optional

from repro.collect.daemon import Daemon
from repro.collect.database import ProfileDatabase
from repro.collect.driver import Driver, DriverConfig
from repro.collect.journal import DrainJournal
from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType
from repro.cpu.machine import Machine
from repro.ctx import NULL_CTX, OTHER_CLASS, ContextLedger, span_id
from repro.faults.injector import (NULL_INJECTOR, FaultInjector, FaultPlan,
                                   InjectedCrash)
from repro.obs import NULL_OBS, ObsConfig, merge_metrics, session_metrics

#: Collection modes a session understands (paper sections 4.2 and 6).
SESSION_MODES = ("cycles", "default", "mux")


@dataclass
class SessionConfig:
    """Profiling-session settings (collection mode, periods, cadence)."""

    mode: str = "default"             # "cycles" | "default" | "mux"
    cycles_period: tuple = (1920, 2048)
    event_period: int = 256
    edge_sampling: bool = False       # section 7 edge-sample prototypes
    edge_mode: str = "double"         # "double" | "interpret"
    # Image names for which separate per-PID profiles are also kept
    # (paper section 4.3 "per-process profiles for specified images").
    per_process_images: tuple = ()
    drain_interval: int = 200_000     # instructions between daemon drains
    charge_overhead: bool = True
    seed: int = 1
    db_root: Optional[str] = None
    log_trace: bool = False
    driver: Optional[DriverConfig] = None
    #: Self-monitoring (repro.obs); None or disabled means zero-cost.
    obs: Optional[ObsConfig] = None
    #: Fault injection (repro.faults); a FaultPlan or None.
    faults: Optional[FaultPlan] = None
    #: Checkpoint the database every N drains (None = only at the end).
    checkpoint_drains: Optional[int] = None
    #: Keep a drain journal next to the database (crash replay).
    journal: bool = True
    #: Rebuild the daemon and keep going when it crashes (vs raising).
    auto_recover: bool = True
    #: Per-request attribution (repro.ctx): thread workload request
    #: classes through the driver/daemon path and persist the context
    #: ledger with every checkpoint.  Off = zero-cost, byte-identical.
    context: bool = False
    #: Driver-side context-table capacity (fixed, paper-style).
    ctx_slots: int = 64

    def make_faults(self):
        """Build the session's FaultInjector (NULL_INJECTOR when off)."""
        if self.faults is None:
            return NULL_INJECTOR
        if isinstance(self.faults, FaultPlan):
            return self.faults.build()
        if isinstance(self.faults, FaultInjector):
            return self.faults
        raise TypeError("SessionConfig.faults must be a FaultPlan or "
                        "None, not %r" % type(self.faults).__name__)

    def make_obs(self):
        """Build the session's Observability (NULL_OBS when off)."""
        if self.obs is None:
            return NULL_OBS
        if not isinstance(self.obs, ObsConfig):
            raise TypeError("SessionConfig.obs must be an ObsConfig or "
                            "None, not %r" % type(self.obs).__name__)
        return self.obs.build()

    def make_driver_config(self):
        if self.mode not in SESSION_MODES:
            raise ValueError("unknown session mode %r; expected one of %s"
                             % (self.mode, ", ".join(SESSION_MODES)))
        if self.driver is not None and not isinstance(self.driver,
                                                      DriverConfig):
            raise TypeError("SessionConfig.driver must be a DriverConfig "
                            "or None, not %r" % type(self.driver).__name__)
        if self.db_root is not None and not isinstance(
                self.db_root, (str, os.PathLike)):
            raise TypeError("SessionConfig.db_root must be a path or None, "
                            "not %r" % type(self.db_root).__name__)
        base = self.driver or DriverConfig()
        return replace(
            base,
            mode=self.mode,
            cycles_period=self.cycles_period,
            event_period=self.event_period,
            charge_overhead=self.charge_overhead,
            log_trace=self.log_trace,
            edge_sampling=self.edge_sampling,
            edge_mode=self.edge_mode,
            seed=self.seed,
            context=self.context,
            ctx_slots=self.ctx_slots,
        )


class SessionResult:
    """Everything a profiling run produced."""

    def __init__(self, machine, driver, daemon, database,
                 instructions, cycles, obs=NULL_OBS):
        self.machine = machine
        self.driver = driver
        self.daemon = daemon
        self.database = database
        self.instructions = instructions
        self.cycles = cycles
        self.obs = obs

    @property
    def profiles(self):
        """{image name: ImageProfile}"""
        return self.daemon.profiles

    def profile_for(self, image):
        name = image if isinstance(image, str) else image.name
        return self.daemon.profiles.get(name)

    def process_profile(self, pid, image):
        """The per-PID profile for (pid, image), if it was requested."""
        name = image if isinstance(image, str) else image.name
        return self.daemon.process_profiles.get((pid, name))

    def total_samples(self, event=EventType.CYCLES):
        return self.driver.event_samples.get(event, 0)

    def stats(self):
        """Combined driver + daemon statistics (legacy key names)."""
        stats = {"instructions": self.instructions, "cycles": self.cycles}
        stats.update({"driver_" + k: v
                      for k, v in self.driver.stats().items()})
        stats.update({"daemon_" + k: v
                      for k, v in self.daemon.stats().items()})
        return stats

    def metrics(self):
        """Typed self-monitoring snapshot under the normalized schema.

        Always available -- the schema half reads counters the
        collection system maintains anyway; the live registry (drain
        timings, resident-gauge peaks) is merged in when the session
        ran with observability enabled.  Mergeable across shards via
        :func:`repro.obs.merge_metrics`.
        """
        return merge_metrics([session_metrics(self),
                              self.obs.registry.to_dict()])

    @property
    def ctx_ledger(self):
        """The daemon's context ledger (None when contexts are off)."""
        return self.daemon.ctx

    def export_mergeable(self):
        """Everything a parallel worker ships back, as plain dicts.

        The profiles are keyed exactly like the daemon's merge --
        (image, event, offset) -- so shards from different processes
        can be summed in any order (:mod:`repro.collect.parallel`).
        """
        return {
            "profiles": self.daemon.export_profiles(),
            "periods": dict(self.daemon.periods),
            "stats": self.stats(),
            "obs": self.metrics(),
            "ctx": (self.daemon.ctx.to_meta()
                    if self.daemon.ctx is not None else None),
        }


class BaselineResult:
    """An unprofiled run of the same workload (for overhead math)."""

    def __init__(self, machine, instructions, cycles):
        self.machine = machine
        self.instructions = instructions
        self.cycles = cycles


class ProfileSession:
    """Run workloads under the continuous-profiling infrastructure."""

    def __init__(self, machine_config=None, config=None):
        self.machine_config = machine_config or MachineConfig()
        self.config = config or SessionConfig()

    def _periods(self):
        lo, hi = self.config.cycles_period
        periods = {EventType.CYCLES: (lo + hi) / 2.0}
        for event in (EventType.IMISS, EventType.DMISS,
                      EventType.BRANCHMP, EventType.DTBMISS,
                      EventType.ITBMISS):
            periods[event] = float(self.config.event_period)
        return periods

    def _setup(self, workload, machine):
        setup = getattr(workload, "setup", None)
        if setup is not None:
            setup(machine)
        else:
            workload(machine)

    def run(self, workload, max_instructions=None, seed=None):
        """Profile *workload*; return a :class:`SessionResult`.

        *workload* is a callable(machine) or an object with a
        ``setup(machine)`` method that builds images and spawns
        processes.  It must build fresh images on every call (linking
        fixes absolute addresses per machine).
        """
        config = self.config
        obs = config.make_obs()
        faults = config.make_faults()
        started = obs.clock() if obs.enabled else None
        with obs.span("session.setup"):
            machine = Machine(self.machine_config,
                              seed=seed if seed is not None else config.seed)
            driver = Driver(self.machine_config.num_cpus,
                            config.make_driver_config(), obs=obs,
                            faults=faults)
            driver.install(machine)
            database = (ProfileDatabase(config.db_root, faults=faults)
                        if config.db_root else None)
            journal = None
            if database is not None and config.journal:
                journal = DrainJournal(database.journal_path())
                journal.truncate()
            # The daemon subscribes to loadmap events before any process
            # is spawned (the paper's daemon additionally scans already-
            # running processes at startup; our fallback path in
            # _find_image covers that case).
            daemon = Daemon(machine.loader, periods=self._periods(),
                            per_process_images=config.per_process_images,
                            obs=obs, faults=faults, journal=journal,
                            ctx=ContextLedger() if config.context
                            else None)
            self._setup(workload, machine)

        total = 0
        drains = 0
        with obs.span("session.execute"):
            while True:
                chunk = config.drain_interval
                if max_instructions is not None:
                    chunk = min(chunk, max_instructions - total)
                    if chunk <= 0:
                        break
                with obs.timeit("session.chunk_s"):
                    ran = machine.run(max_instructions=chunk)
                total += ran
                try:
                    # A machine restart kills everything volatile: the
                    # driver's buffers and the daemon's memory.  The
                    # database (disk) survives.
                    faults.check("session.restart")
                    with obs.timeit("session.drain_s"):
                        daemon.drain(driver)
                    drains += 1
                    if (database is not None and config.checkpoint_drains
                            and drains % config.checkpoint_drains == 0):
                        with obs.span("session.checkpoint"):
                            daemon.merge_to_disk(database)
                except InjectedCrash as crash:
                    if not config.auto_recover:
                        raise
                    daemon = self._recover_daemon(
                        crash, machine, driver, daemon, database,
                        journal, obs, faults)
                driver.rotate_mux()
                for proc in machine.processes:
                    if proc.exited:
                        daemon.reap(proc.pid)
                if ran == 0:
                    break
        self._fold_requests(machine, daemon)
        if database is not None:
            with obs.span("session.merge_to_disk"):
                while True:
                    try:
                        # Re-fold after any recovery: the recovered
                        # ledger reflects the last checkpoint, and the
                        # fold is idempotent (keyed assignment).
                        self._fold_requests(machine, daemon)
                        daemon.merge_to_disk(database)
                        break
                    except InjectedCrash as crash:
                        if not config.auto_recover:
                            raise
                        daemon = self._recover_daemon(
                            crash, machine, driver, daemon, database,
                            journal, obs, faults)
        if obs.enabled:
            if daemon.ctx is not None:
                # Span linkage: one instant per request class carrying
                # its deterministic span id, so dcpimon traces and the
                # sample profiles share identity (repro.ctx).
                for name in sorted(daemon.ctx.classes):
                    obs.trace.instant("ctx.class", cls=name,
                                      span=span_id(name))
            obs.gauge("session.wall_s").set(obs.clock() - started)
            obs.finish()
        return SessionResult(machine, driver, daemon, database,
                             total, machine.time, obs=obs)

    @staticmethod
    def _fold_requests(machine, daemon):
        """Fold per-process request totals into the context ledger.

        Each process is one "request" of its class (the workload's
        ctx label); its lifetime cycles/instructions feed the tail
        percentiles dcpitrace reports.  Keys are ``seed:pid`` so
        shards run with distinct seeds union cleanly, and the fold
        is a keyed assignment -- running it again (after a crash
        recovery, say) is a no-op, never a double count.
        """
        ledger = daemon.ctx
        if ledger is None:
            return
        for proc in machine.processes:
            ctx = proc.ctx
            name = str(ctx) if ctx is not NULL_CTX else OTHER_CLASS
            key = "%d:%d" % (machine.seed, proc.pid)
            ledger.add_request(name, key, proc.cpu_cycles,
                               proc.instructions, process=proc.name,
                               done=proc.exited)

    def _recover_daemon(self, crash, machine, driver, old, database,
                        journal, obs, faults):
        """Stand up a replacement daemon after an injected crash.

        With a database, recovery rebuilds from the last durable
        checkpoint plus the drain journal and then re-drains the
        batches the dead daemon left pinned in the driver.  Without
        one there is nothing durable: the old daemon's in-memory
        samples are accounted as lost and a fresh daemon takes over.
        A restart crash additionally wipes the driver's volatile
        state (accounted in its ``dropped`` counters).

        Recovery itself runs under the same crash protection: a fault
        that fires again during the catch-up re-drain (or the journal
        replay) triggers another recovery round rather than
        propagating, so any bounded fault plan converges on a live
        daemon.  (An unbounded always-crash plan recovers forever --
        by construction it never lets a daemon live.)
        """
        config = self.config
        while True:
            machine.loader.remove_listener(old.on_loadmap)
            if crash.point == "session.restart":
                driver.drop_all_pending()
            daemon = None
            try:
                if database is not None:
                    ctx_seed = None
                    if config.context:
                        # The driver (kernel side) survives a daemon
                        # crash, and its context table holds every id
                        # binding -- including ones newer than the
                        # last checkpoint, which the journal replay
                        # inside recover() needs to attribute.
                        ctx_seed = ContextLedger()
                        if driver.ctx_table is not None:
                            ctx_seed.absorb_table(driver.ctx_table)
                    daemon = Daemon.recover(
                        machine.loader, database, journal=journal,
                        periods=self._periods(),
                        per_process_images=config.per_process_images,
                        obs=obs, faults=faults, ctx=ctx_seed)
                    if journal is None:
                        # No journal to replay: whatever the old daemon
                        # held beyond the checkpoint is gone -- account
                        # it.
                        daemon.lost_samples += max(
                            0, old.total_samples - daemon.total_samples)
                    daemon.recoveries = max(daemon.recoveries,
                                            old.recoveries + 1)
                else:
                    daemon = Daemon(
                        machine.loader, periods=self._periods(),
                        per_process_images=config.per_process_images,
                        obs=obs, faults=faults,
                        ctx=ContextLedger() if config.context
                        else None)
                    daemon.epoch = old.epoch
                    daemon.recoveries = old.recoveries + 1
                    daemon.lost_samples = (old.lost_samples
                                           + old.total_samples)
                    daemon.drains = old.drains
                    daemon.drain_retries = old.drain_retries
                    daemon.drain_failures = old.drain_failures
                    daemon.loadmaps_dropped = old.loadmaps_dropped
                daemon.redrain_inflight(driver)
                # Catch-up drain: the crashed drain would have flushed
                # the driver's hash tables at this chunk boundary; do
                # it now so the table's hit/miss pattern -- and
                # therefore the charged handler cycles and the sample
                # stream -- stay identical to a fault-free run.
                # Collection faults must never perturb the machine,
                # only the collection side.
                daemon.drain(driver)
                return daemon
            except InjectedCrash as next_crash:
                crash = next_crash
                if daemon is not None:
                    old = daemon

    def run_baseline(self, workload, max_instructions=None, seed=None):
        """Run *workload* without any profiling (same seed, same stream)."""
        machine = Machine(self.machine_config,
                          seed=seed if seed is not None else self.config.seed)
        self._setup(workload, machine)
        total = 0
        while True:
            chunk = self.config.drain_interval
            if max_instructions is not None:
                chunk = min(chunk, max_instructions - total)
                if chunk <= 0:
                    break
            ran = machine.run(max_instructions=chunk)
            total += ran
            if ran == 0:
                break
        return BaselineResult(machine, total, machine.time)
