"""The on-disk profile database and the in-memory profile container.

Profiles are organized into non-overlapping *epochs*; within an epoch
one file stores the samples for a given (image, event) combination
(paper section 4.3.3).  Two binary formats are implemented:

* ``raw``      -- fixed 8-byte records (u32 offset, u32 count);
* ``compact``  -- varint-encoded offset deltas and counts, the paper's
  "improved format that can compress existing profiles by approximately
  a factor of three".

``benchmarks/bench_table5_space.py`` measures both.
"""

import io
import os
import struct

from repro.cpu.events import EventType

MAGIC = b"DCPI"
VERSION = 2
FORMAT_RAW = 0
FORMAT_COMPACT = 1


def _write_varint(out, value):
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def _read_varint(buf):
    shift = 0
    result = 0
    while True:
        byte = buf.read(1)
        if not byte:
            raise EOFError("truncated varint")
        b = byte[0]
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result
        shift += 7


def encode_profile(counts, image_name, event, period,
                   fmt=FORMAT_COMPACT, epoch=0):
    """Serialize a {offset: count} map; return bytes."""
    out = io.BytesIO()
    name_bytes = image_name.encode("utf-8")
    event_bytes = str(event).encode("utf-8")
    out.write(MAGIC)
    out.write(struct.pack("<HBH", VERSION, fmt, epoch))
    out.write(struct.pack("<H", len(name_bytes)))
    out.write(name_bytes)
    out.write(struct.pack("<H", len(event_bytes)))
    out.write(event_bytes)
    out.write(struct.pack("<II", int(period), len(counts)))
    last = 0
    for offset in sorted(counts):
        count = counts[offset]
        if fmt == FORMAT_RAW:
            out.write(struct.pack("<II", offset, count))
        else:
            _write_varint(out, offset - last)
            _write_varint(out, count)
            last = offset
    return out.getvalue()


def decode_profile(data):
    """Inverse of :func:`encode_profile`.

    Returns (counts, image_name, event, period, epoch).
    """
    buf = io.BytesIO(data)
    if buf.read(4) != MAGIC:
        raise ValueError("not a DCPI profile")
    version, fmt, epoch = struct.unpack("<HBH", buf.read(5))
    if version != VERSION:
        raise ValueError("unsupported profile version %d" % version)
    (name_len,) = struct.unpack("<H", buf.read(2))
    image_name = buf.read(name_len).decode("utf-8")
    (event_len,) = struct.unpack("<H", buf.read(2))
    event = EventType(buf.read(event_len).decode("utf-8"))
    period, n = struct.unpack("<II", buf.read(8))
    counts = {}
    last = 0
    for _ in range(n):
        if fmt == FORMAT_RAW:
            offset, count = struct.unpack("<II", buf.read(8))
        else:
            offset = last + _read_varint(buf)
            count = _read_varint(buf)
            last = offset
        counts[offset] = count
    return counts, image_name, event, period, epoch


def _safe_name(image_name):
    return image_name.replace("/", "_").strip("_") or "unknown"


class ProfileDatabase:
    """Directory-backed profile storage with epochs and merging."""

    def __init__(self, root, fmt=FORMAT_COMPACT):
        self.root = root
        self.fmt = fmt
        os.makedirs(root, exist_ok=True)

    def _path(self, epoch, image_name, event):
        epoch_dir = os.path.join(self.root, "epoch%04d" % epoch)
        os.makedirs(epoch_dir, exist_ok=True)
        return os.path.join(
            epoch_dir, "%s@%s.prof" % (_safe_name(image_name), event))

    def save(self, image_name, event, counts, period, epoch=0):
        """Merge *counts* into the stored profile for (image, event)."""
        path = self._path(epoch, image_name, event)
        merged = dict(counts)
        if os.path.exists(path):
            with open(path, "rb") as handle:
                existing, _, _, _, _ = decode_profile(handle.read())
            for offset, count in existing.items():
                merged[offset] = merged.get(offset, 0) + count
        data = encode_profile(merged, image_name, event, period,
                              self.fmt, epoch)
        with open(path, "wb") as handle:
            handle.write(data)
        return path

    def load(self, image_name, event, epoch=0):
        """Return ({offset: count}, period) for (image, event)."""
        path = self._path(epoch, image_name, event)
        with open(path, "rb") as handle:
            counts, _, _, period, _ = decode_profile(handle.read())
        return counts, period

    def epochs(self):
        return sorted(
            int(name[5:]) for name in os.listdir(self.root)
            if name.startswith("epoch"))

    def profiles(self, epoch=0):
        """Yield (image_name, event) pairs stored for *epoch*."""
        epoch_dir = os.path.join(self.root, "epoch%04d" % epoch)
        if not os.path.isdir(epoch_dir):
            return
        for name in sorted(os.listdir(epoch_dir)):
            if not name.endswith(".prof"):
                continue
            stem = name[:-5]
            image_name, _, event = stem.rpartition("@")
            yield image_name, EventType(event)

    def disk_bytes(self):
        """Total bytes used by all stored profiles."""
        total = 0
        for dirpath, _, files in os.walk(self.root):
            for name in files:
                total += os.path.getsize(os.path.join(dirpath, name))
        return total


class ImageProfile:
    """In-memory samples for one image, by event type.

    This is what the analysis tools consume.  ``counts[event]`` maps an
    image-relative instruction offset to its aggregated sample count;
    ``periods[event]`` is the mean sampling period used, needed to turn
    sample counts into cycle counts (cycles ~= samples * period).
    """

    def __init__(self, image, counts=None, periods=None):
        self.image = image
        self.counts = counts or {}
        self.periods = periods or {}
        #: (from offset, to offset) -> edge samples (double sampling).
        self.edge_counts = {}
        # Distinct (event, offset) entries, maintained incrementally so
        # the daemon's resident-memory model stays O(#profiles) even
        # when sampled at every allocation (repro.obs).
        self._entries = sum(len(by_offset)
                            for by_offset in self.counts.values())

    def add_edge(self, from_offset, to_offset, count):
        key = (from_offset, to_offset)
        self.edge_counts[key] = self.edge_counts.get(key, 0) + count

    def edges_by_addr(self):
        """Return {(from addr, to addr): edge samples}."""
        base = self.image.base
        return {(base + f, base + t): count
                for (f, t), count in self.edge_counts.items()}

    def add(self, event, offset, count):
        by_offset = self.counts.setdefault(event, {})
        if offset in by_offset:
            by_offset[offset] += count
        else:
            by_offset[offset] = count
            self._entries += 1

    def entry_count(self):
        """Distinct (event, offset) entries this profile holds."""
        return self._entries

    def total(self, event):
        return sum(self.counts.get(event, {}).values())

    def samples_by_addr(self, event):
        """Return {absolute address: samples} for *event*."""
        base = self.image.base
        return {base + off: cnt
                for off, cnt in self.counts.get(event, {}).items()}

    def samples_for(self, proc, event):
        """Return {absolute address: samples} inside procedure *proc*."""
        base = self.image.base
        result = {}
        for off, cnt in self.counts.get(event, {}).items():
            addr = base + off
            if proc.start <= addr < proc.end:
                result[addr] = cnt
        return result

    def procedure_totals(self, event):
        """Return {procedure name: samples} for *event*."""
        totals = {}
        by_offset = self.counts.get(event, {})
        for proc in self.image.procedures:
            total = 0
            for off, cnt in by_offset.items():
                if proc.start <= self.image.base + off < proc.end:
                    total += cnt
            totals[proc.name] = total
        return totals
