"""The on-disk profile database and the in-memory profile container.

Profiles are organized into non-overlapping *epochs*; within an epoch
one file stores the samples for a given (image, event) combination
(paper section 4.3.3).  Two binary formats are implemented:

* ``raw``      -- fixed 8-byte records (u32 offset, u32 count);
* ``compact``  -- varint-encoded offset deltas and counts, the paper's
  "improved format that can compress existing profiles by approximately
  a factor of three".

``benchmarks/bench_table5_space.py`` measures both.

Crash safety (the continuous-profiling promise: the database survives
daemon death and machine restarts):

* every profile write goes to a fresh generation-numbered file via
  write-to-temp + atomic rename -- stored files are immutable, so a
  torn write can never damage committed data;
* the profile format (version 3) carries a CRC32 trailer, and the
  manifest records an independent whole-file CRC, so corruption is
  detected rather than decoded into garbage;
* a single ``MANIFEST.json``, itself committed by atomic rename, is
  the linearization point: a crash at any instant leaves either the
  old or the new manifest, each referencing only complete files;
* corrupt or missing files are *quarantined* on load -- moved aside,
  their manifest-declared sample totals recorded as accounted loss --
  and iteration (:meth:`profiles`, :meth:`epochs`, :meth:`load_all`)
  keeps going;
* a damaged manifest is rebuilt by scanning the files it committed
  (highest generation per key wins); only when no manifest ever
  existed are generation files treated as uncommitted crash orphans;
* decode failures raise the typed :class:`CorruptProfileError`
  (a ``ValueError``) instead of raw struct/varint errors.
"""

import io
import json
import os
import struct
import zlib

from repro.cpu.events import EventType
from repro.faults.injector import NULL_INJECTOR

MAGIC = b"DCPI"
VERSION = 3
FORMAT_RAW = 0
FORMAT_COMPACT = 1

#: Versions :func:`decode_profile` accepts (2 = pre-checksum files).
SUPPORTED_VERSIONS = (2, 3)

MANIFEST_NAME = "MANIFEST.json"
JOURNAL_NAME = "drain.wal"
QUARANTINE_DIR = "quarantine"


class CorruptProfileError(ValueError):
    """A profile file failed validation (bad magic, checksum, codec)."""

    def __init__(self, message, path=None):
        super().__init__(message)
        self.path = path


def _write_varint(out, value):
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def _read_varint(buf):
    shift = 0
    result = 0
    while True:
        byte = buf.read(1)
        if not byte:
            raise EOFError("truncated varint")
        b = byte[0]
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result
        shift += 7


def encode_profile(counts, image_name, event, period,
                   fmt=FORMAT_COMPACT, epoch=0):
    """Serialize a {offset: count} map; return bytes.

    Version 3 appends a CRC32 trailer over the whole body so torn and
    bit-flipped files are detected on decode.
    """
    out = io.BytesIO()
    name_bytes = image_name.encode("utf-8")
    event_bytes = str(event).encode("utf-8")
    out.write(MAGIC)
    out.write(struct.pack("<HBH", VERSION, fmt, epoch))
    out.write(struct.pack("<H", len(name_bytes)))
    out.write(name_bytes)
    out.write(struct.pack("<H", len(event_bytes)))
    out.write(event_bytes)
    out.write(struct.pack("<II", int(period), len(counts)))
    last = 0
    for offset in sorted(counts):
        count = counts[offset]
        if fmt == FORMAT_RAW:
            out.write(struct.pack("<II", offset, count))
        else:
            _write_varint(out, offset - last)
            _write_varint(out, count)
            last = offset
    body = out.getvalue()
    return body + struct.pack("<I", zlib.crc32(body))


def decode_profile(data):
    """Inverse of :func:`encode_profile`.

    Returns (counts, image_name, event, period, epoch).  Any failure
    -- bad magic, truncation, checksum mismatch, codec error -- raises
    :class:`CorruptProfileError` (a ``ValueError``), never a raw
    struct/varint exception.
    """
    try:
        return _decode_profile(data)
    except CorruptProfileError:
        raise
    except (struct.error, EOFError, UnicodeDecodeError, ValueError,
            OverflowError, MemoryError) as exc:
        raise CorruptProfileError("corrupt profile: %s" % exc) from exc


def _decode_profile(data):
    buf = io.BytesIO(data)
    if buf.read(4) != MAGIC:
        raise CorruptProfileError("not a DCPI profile")
    version, fmt, epoch = struct.unpack("<HBH", buf.read(5))
    if version not in SUPPORTED_VERSIONS:
        raise CorruptProfileError(
            "unsupported profile version %d" % version)
    if version >= 3:
        if len(data) < 13:
            raise CorruptProfileError("truncated profile trailer")
        body, (crc,) = data[:-4], struct.unpack("<I", data[-4:])
        if zlib.crc32(body) != crc:
            raise CorruptProfileError("profile checksum mismatch")
        buf = io.BytesIO(body)
        buf.seek(9)
    (name_len,) = struct.unpack("<H", buf.read(2))
    image_name = buf.read(name_len).decode("utf-8")
    (event_len,) = struct.unpack("<H", buf.read(2))
    event = EventType(buf.read(event_len).decode("utf-8"))
    period, n = struct.unpack("<II", buf.read(8))
    counts = {}
    last = 0
    for _ in range(n):
        if fmt == FORMAT_RAW:
            offset, count = struct.unpack("<II", buf.read(8))
        else:
            offset = last + _read_varint(buf)
            count = _read_varint(buf)
            last = offset
        counts[offset] = count
    return counts, image_name, event, period, epoch


def _salvage_total(data):
    """Best-effort sample total of a possibly-corrupt profile.

    Quarantine during a manifest rebuild has no manifest-declared
    total to account the loss with, so decode leniently instead --
    no checksum check, stop at the first undecodable record -- and
    return the sum of whatever counts were readable (0 when even the
    header is gone).  Never raises.
    """
    try:
        buf = io.BytesIO(data)
        if buf.read(4) != MAGIC:
            return 0
        version, fmt, _ = struct.unpack("<HBH", buf.read(5))
        if version >= 3 and len(data) >= 13:
            buf = io.BytesIO(data[:-4])
            buf.seek(9)
        (name_len,) = struct.unpack("<H", buf.read(2))
        buf.seek(name_len, io.SEEK_CUR)
        (event_len,) = struct.unpack("<H", buf.read(2))
        buf.seek(event_len, io.SEEK_CUR)
        _, n = struct.unpack("<II", buf.read(8))
    except Exception:
        return 0
    total = 0
    for _ in range(n):
        try:
            if fmt == FORMAT_RAW:
                _, count = struct.unpack("<II", buf.read(8))
            else:
                _read_varint(buf)
                count = _read_varint(buf)
        except Exception:
            break
        total += count
    return total


def _safe_name(image_name):
    return image_name.replace("/", "_").strip("_") or "unknown"


def _atomic_write(path, data, binary=True):
    """Write *data* to *path* via temp file + atomic rename."""
    tmp = path + ".tmp"
    mode = "wb" if binary else "w"
    with open(tmp, mode) as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class ProfileDatabase:
    """Directory-backed profile storage with epochs and merging.

    All mutations are shadow-paging: new generation-numbered files are
    written first, then a single atomic manifest rename commits them
    and unreferenced files are garbage-collected.  A crash at any
    point leaves the previous committed state intact.
    """

    def __init__(self, root, fmt=FORMAT_COMPACT, faults=None):
        self.root = os.fspath(root)
        self.fmt = fmt
        self.faults = faults or NULL_INJECTOR
        #: Human-readable notes about salvage decisions (rebuilt
        #: manifest, quarantined files); consumers surface these.
        self.warnings = []
        os.makedirs(self.root, exist_ok=True)
        self._manifest = None

    # -- manifest ----------------------------------------------------------

    def _manifest_path(self):
        return os.path.join(self.root, MANIFEST_NAME)

    def _load_manifest(self):
        if self._manifest is not None:
            return self._manifest
        path = self._manifest_path()
        damaged = False
        if os.path.exists(path):
            try:
                with open(path) as handle:
                    manifest = json.load(handle)
                if isinstance(manifest, dict) and "records" in manifest:
                    self._manifest = manifest
                    return manifest
                damaged = True
                self.warnings.append(
                    "manifest malformed; rebuilt from profile files")
            except (json.JSONDecodeError, OSError, UnicodeDecodeError):
                damaged = True
                self.warnings.append(
                    "manifest unreadable; rebuilt from profile files")
        self._manifest = self._scan(adopt_generations=damaged)
        return self._manifest

    def _scan(self, adopt_generations=False):
        """Rebuild a manifest by decoding the profile files on disk.

        The fallback for pre-manifest databases and for a destroyed
        manifest.  Files that fail to decode are quarantined with a
        best-effort salvaged total so their loss is still accounted.

        Generation-suffixed files (``*.g<N>.prof``) are only ever
        written by manifest-era code, so their meaning depends on *why*
        there is no manifest to read:

        * Manifest absent (``adopt_generations=False``): a crash landed
          between writing shadow files and the manifest rename.  Those
          are uncommitted orphans -- their samples live in the drain
          journal for replay -- so adopting them here would
          double-count.  They are skipped (the next commit's GC removes
          them), but still advance the generation counter so new writes
          never collide with leftovers.

        * Manifest present but unreadable (``adopt_generations=True``):
          at-rest damage to the manifest itself, after which *every*
          committed file is generation-suffixed.  Skipping them would
          hand intact, CRC-valid profiles to the next commit's GC --
          silent total loss -- so they are adopted instead, the highest
          generation per (epoch, image, event) winning exactly as the
          lost manifest's newest-write-wins commits did.
        """
        manifest = {"version": 1, "generation": 0, "records": {},
                    "checkpoint": None, "quarantined": []}
        adopted_gens = {}
        for name in sorted(os.listdir(self.root)):
            if not name.startswith("epoch"):
                continue
            epoch_dir = os.path.join(self.root, name)
            if not os.path.isdir(epoch_dir):
                continue
            for fname in sorted(os.listdir(epoch_dir)):
                if not fname.endswith(".prof"):
                    continue
                rel = os.path.join(name, fname)
                gen = _parse_generation(fname)
                if gen > manifest["generation"]:
                    manifest["generation"] = gen
                if gen and not adopt_generations:
                    continue
                with open(os.path.join(epoch_dir, fname), "rb") as handle:
                    data = handle.read()
                try:
                    counts, image_name, event, period, epoch = (
                        decode_profile(data))
                except CorruptProfileError as exc:
                    self._move_to_quarantine(rel)
                    manifest["quarantined"].append({
                        "key": rel, "file": rel,
                        "declared_total": _salvage_total(data),
                        "reason": str(exc)})
                    self.warnings.append(
                        "quarantined %s during rebuild (%s)" % (rel, exc))
                    continue
                key = self._key(epoch, image_name, event)
                if gen < adopted_gens.get(key, -1):
                    continue
                adopted_gens[key] = gen
                manifest["records"][key] = {
                    "file": rel,
                    "image": image_name,
                    "event": str(event),
                    "epoch": epoch,
                    "period": period,
                    "total": sum(counts.values()),
                    "crc": zlib.crc32(data),
                }
        return manifest

    def _commit(self, manifest):
        """Atomically publish *manifest*; then GC unreferenced files.

        If the commit dies (an injected crash between writing files
        and renaming the manifest), the cached manifest is invalidated
        so the next access reloads the last *committed* state from
        disk -- staged in-memory mutations must not survive a failed
        commit.
        """
        try:
            self.faults.check("db.checkpoint")
            payload = json.dumps(manifest, indent=1, sort_keys=True)
            _atomic_write(self._manifest_path(), payload, binary=False)
        except BaseException:
            self._manifest = None
            raise
        self._manifest = manifest
        self._gc(manifest)

    def _gc(self, manifest):
        referenced = {record["file"]
                      for record in manifest["records"].values()}
        for name in os.listdir(self.root):
            if not name.startswith("epoch"):
                continue
            epoch_dir = os.path.join(self.root, name)
            if not os.path.isdir(epoch_dir):
                continue
            for fname in os.listdir(epoch_dir):
                if not (fname.endswith(".prof") or fname.endswith(".tmp")):
                    continue
                rel = os.path.join(name, fname)
                if rel not in referenced:
                    try:
                        os.unlink(os.path.join(epoch_dir, fname))
                    # GC is best-effort: a shard held open by a racing
                    # reader is retried on the next sweep.
                    except OSError:  # dcpicheck: ignore[swallowed-exception]
                        pass

    @staticmethod
    def _key(epoch, image_name, event):
        return "%04d/%s@%s" % (epoch, image_name, event)

    # -- quarantine --------------------------------------------------------

    def _move_to_quarantine(self, rel):
        qdir = os.path.join(self.root, QUARANTINE_DIR)
        os.makedirs(qdir, exist_ok=True)
        src = os.path.join(self.root, rel)
        dst = os.path.join(qdir, rel.replace(os.sep, "_"))
        try:
            os.replace(src, dst)
        # Quarantine is advisory: the record is already dropped from
        # the live set, so a failed move only leaves a stale file.
        except OSError:  # dcpicheck: ignore[swallowed-exception]
            pass

    def _quarantine(self, manifest, key, record, reason):
        """Pull *record* out of the live set; account its samples."""
        self._move_to_quarantine(record["file"])
        manifest["records"].pop(key, None)
        manifest["quarantined"].append({
            "key": key,
            "file": record["file"],
            "declared_total": record.get("total", 0),
            "reason": reason,
        })
        self.warnings.append(
            "quarantined %s (%s)" % (record["file"], reason))

    def quarantined(self):
        """Quarantine ledger entries (key, file, declared_total, reason)."""
        return list(self._load_manifest()["quarantined"])

    def quarantined_samples(self):
        """Samples lost to quarantined files (manifest-declared totals)."""
        return sum(entry.get("declared_total") or 0
                   for entry in self._load_manifest()["quarantined"])

    # -- write path --------------------------------------------------------

    def _write_profile(self, manifest, image_name, event, counts,
                       period, epoch):
        """Write one immutable generation file; return its record."""
        event = str(event)
        manifest["generation"] += 1
        gen = manifest["generation"]
        epoch_dir = os.path.join(self.root, "epoch%04d" % epoch)
        os.makedirs(epoch_dir, exist_ok=True)
        fname = "%s@%s.g%d.prof" % (_safe_name(image_name), event, gen)
        rel = os.path.join("epoch%04d" % epoch, fname)
        data = encode_profile(counts, image_name, event, period,
                              self.fmt, epoch)
        payload = self.faults.corrupt_bytes("db.write", data)
        _atomic_write(os.path.join(epoch_dir, fname), payload)
        return {
            "file": rel,
            "image": image_name,
            "event": event,
            "epoch": epoch,
            "period": int(period),
            "total": sum(counts.values()),
            "crc": zlib.crc32(data),
        }

    def save(self, image_name, event, counts, period, epoch=0,
             replace=False):
        """Merge *counts* into the stored profile for (image, event).

        With ``replace=True`` the stored profile is overwritten instead
        of merged -- the idempotent form the daemon's checkpoints use
        (re-running a checkpoint never double-counts).
        """
        manifest = self._load_manifest()
        key = self._key(epoch, image_name, str(event))
        merged = dict(counts)
        record = manifest["records"].get(key)
        if not replace and record is not None:
            try:
                existing, _, _, _, _ = self._read_record(record)
            except CorruptProfileError as exc:
                self._quarantine(manifest, key, record, str(exc))
            else:
                for offset, count in existing.items():
                    merged[offset] = merged.get(offset, 0) + count
        new_record = self._write_profile(manifest, image_name, event,
                                         merged, period, epoch)
        manifest["records"][key] = new_record
        self._commit(manifest)
        return os.path.join(self.root, new_record["file"])

    def checkpoint(self, profiles, periods, epoch, meta=None, ctx=None):
        """Atomically replace *epoch*'s stored state with *profiles*.

        *profiles* is ``{image name: {event: {offset: count}}}`` (the
        daemon's cumulative in-memory state for the epoch), *periods*
        maps event -> sampling period, and *meta* -- stored under the
        manifest's ``checkpoint`` key -- carries the daemon's recovery
        watermarks.  *ctx* (stored under the manifest's ``ctx`` key,
        like the fleet ledger) carries the request-context ledger;
        None -- the only value when the context dimension is off --
        leaves the manifest untouched, keeping ctx-less databases
        byte-identical to pre-context output.  All files are written
        first; the single manifest rename is the commit point, so a
        crash anywhere leaves the previous checkpoint intact and
        re-running is idempotent.
        """
        manifest = self._load_manifest()
        new_records = {}
        for image_name in sorted(profiles):
            for event, counts in sorted(profiles[image_name].items(),
                                        key=lambda item: str(item[0])):
                record = self._write_profile(
                    manifest, image_name, event, counts,
                    periods.get(event, 1), epoch)
                new_records[self._key(epoch, image_name,
                                      str(event))] = record
        prefix = "%04d/" % epoch
        for key in list(manifest["records"]):
            if key.startswith(prefix) and key not in new_records:
                del manifest["records"][key]
        manifest["records"].update(new_records)
        if meta is not None:
            manifest["checkpoint"] = dict(meta)
        if ctx is not None:
            manifest["ctx"] = ctx
        self._commit(manifest)

    def update_checkpoint(self, meta):
        """Commit new checkpoint *meta* without touching profiles."""
        manifest = self._load_manifest()
        manifest["checkpoint"] = dict(meta)
        self._commit(manifest)

    def merge_epoch(self, profiles, periods, epoch, meta=None,
                    meta_key="fleet"):
        """Merge a delta's ``{image: {event: {offset: count}}}`` into
        *epoch* under a single manifest commit.

        Unlike :meth:`save` (one commit per (image, event)), the whole
        delta plus the optional *meta* blob -- committed under
        ``manifest[meta_key]`` -- becomes durable atomically.  The
        fleet store rides on this: recording an applied delta id in the
        same commit as its samples is what makes duplicate delivery
        idempotent even across a crash between merge and ledger write.
        """
        manifest = self._load_manifest()
        for image_name in sorted(profiles):
            by_event = profiles[image_name]
            for event in sorted(by_event, key=str):
                counts = by_event[event]
                key = self._key(epoch, image_name, str(event))
                merged = dict(counts)
                record = manifest["records"].get(key)
                if record is not None:
                    try:
                        existing, _, _, _, _ = self._read_record(record)
                    except CorruptProfileError as exc:
                        self._quarantine(manifest, key, record, str(exc))
                    else:
                        for offset, count in existing.items():
                            merged[offset] = merged.get(offset, 0) + count
                manifest["records"][key] = self._write_profile(
                    manifest, image_name, event, merged,
                    periods.get(event, 1), epoch)
        if meta is not None:
            manifest[meta_key] = meta
        self._commit(manifest)

    def drop_epoch(self, epoch, meta=None, meta_key="fleet"):
        """Remove every committed profile of *epoch* in one commit.

        Used by the fleet store's retention compaction after an old
        epoch's samples have been merge-downsampled into a coarser
        window.  *meta* (committed atomically with the drop, like
        :meth:`merge_epoch`) lets the caller record where the samples
        went so nothing is lost silently.
        """
        manifest = self._load_manifest()
        prefix = "%04d/" % epoch
        for key in list(manifest["records"]):
            if key.startswith(prefix):
                del manifest["records"][key]
        if meta is not None:
            manifest[meta_key] = meta
        self._commit(manifest)

    def compact_epochs(self, source_epochs, profiles, periods,
                       target_epoch, meta=None, meta_key="fleet"):
        """Replace *source_epochs* with *profiles* stored at
        *target_epoch*, all under one manifest commit.

        The retention path of the fleet store uses this to
        merge-downsample a window of old epochs: the compacted files
        are written first, then a single atomic manifest rename both
        publishes them and drops every source-epoch record, so a crash
        at any instant leaves either the original epochs or the
        compacted window -- never both (double counting) and never
        neither (silent loss).
        """
        manifest = self._load_manifest()
        new_records = {}
        for image_name in sorted(profiles):
            by_event = profiles[image_name]
            for event in sorted(by_event, key=str):
                record = self._write_profile(
                    manifest, image_name, event, by_event[event],
                    periods.get(event, 1), target_epoch)
                new_records[self._key(target_epoch, image_name,
                                      str(event))] = record
        prefixes = tuple("%04d/" % epoch
                         for epoch in sorted(set(source_epochs)
                                             | {target_epoch}))
        for key in list(manifest["records"]):
            if key.startswith(prefixes):
                del manifest["records"][key]
        manifest["records"].update(new_records)
        if meta is not None:
            manifest[meta_key] = meta
        self._commit(manifest)

    def get_meta(self, meta_key="fleet"):
        """The last committed *meta_key* blob (see :meth:`merge_epoch`).

        Returns None for databases that never committed one, and for
        manifests rebuilt from a destroyed ``MANIFEST.json`` (the scan
        can recover profiles from their files, but side-channel
        metadata only ever lived in the manifest).
        """
        meta = self._load_manifest().get(meta_key)
        return json.loads(json.dumps(meta)) if meta is not None else None

    def checkpoint_meta(self):
        """The last committed checkpoint metadata, or None."""
        meta = self._load_manifest().get("checkpoint")
        return dict(meta) if meta else None

    # -- read path ---------------------------------------------------------

    def _read_record(self, record):
        """Read + verify one manifest record; raise CorruptProfileError."""
        path = os.path.join(self.root, record["file"])
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError as exc:
            raise CorruptProfileError(
                "profile file missing", path=path) from exc
        crc = record.get("crc")
        if crc is not None and zlib.crc32(data) != crc:
            raise CorruptProfileError(
                "stored checksum mismatch", path=path)
        try:
            return decode_profile(data)
        except CorruptProfileError as exc:
            exc.path = path
            raise

    def load(self, image_name, event, epoch=0):
        """Return ({offset: count}, period) for (image, event).

        Raises ``FileNotFoundError`` if no such profile is committed,
        :class:`CorruptProfileError` (after quarantining the file) if
        the committed bytes fail validation.
        """
        manifest = self._load_manifest()
        key = self._key(epoch, image_name, str(event))
        record = manifest["records"].get(key)
        if record is None:
            raise FileNotFoundError(
                "no profile for (%s, %s) in epoch %d"
                % (image_name, event, epoch))
        try:
            counts, _, _, period, _ = self._read_record(record)
        except CorruptProfileError:
            self._quarantine(manifest, key, record,
                             "corrupt on load")
            self._commit(manifest)
            raise
        return counts, period

    def load_all(self, epoch=0):
        """Yield (image_name, event, counts, period) for *epoch*.

        Robust iteration: corrupt files are quarantined (their loss
        accounted) and skipped rather than aborting the scan.
        """
        manifest = self._load_manifest()
        dirty = False
        prefix = "%04d/" % epoch
        for key in sorted(manifest["records"]):
            if not key.startswith(prefix):
                continue
            record = manifest["records"][key]
            try:
                counts, _, _, period, _ = self._read_record(record)
            except CorruptProfileError as exc:
                self._quarantine(manifest, key, record, str(exc))
                dirty = True
                continue
            yield (record["image"], EventType(record["event"]),
                   counts, period)
        if dirty:
            self._commit(manifest)

    def epochs(self):
        """Sorted epoch numbers with at least one committed profile."""
        manifest = self._load_manifest()
        return sorted({record["epoch"]
                       for record in manifest["records"].values()})

    def profiles(self, epoch=0):
        """Yield (image_name, event) pairs stored for *epoch*."""
        manifest = self._load_manifest()
        prefix = "%04d/" % epoch
        for key in sorted(manifest["records"]):
            if key.startswith(prefix):
                record = manifest["records"][key]
                yield record["image"], EventType(record["event"])

    def total_samples(self, epoch=None, event=None):
        """Committed sample total (per epoch/event when given)."""
        total = 0
        epochs = [epoch] if epoch is not None else self.epochs()
        for ep in epochs:
            for _, ev, counts, _ in self.load_all(ep):
                if event is not None and ev != event:
                    continue
                total += sum(counts.values())
        return total

    def verify(self):
        """Re-validate every committed profile; quarantine failures.

        Returns {"checked": n, "quarantined": newly quarantined,
        "lost_samples": total declared samples in quarantine}.
        """
        before = len(self._load_manifest()["quarantined"])
        checked = 0
        for epoch in self.epochs():
            for _ in self.load_all(epoch):
                checked += 1
        manifest = self._load_manifest()
        return {
            "checked": checked,
            "quarantined": len(manifest["quarantined"]) - before,
            "lost_samples": self.quarantined_samples(),
        }

    # -- misc --------------------------------------------------------------

    def journal_path(self):
        """Where this database's drain journal (WAL) lives."""
        return os.path.join(self.root, JOURNAL_NAME)

    def disk_bytes(self):
        """Total bytes used by committed profiles.

        Bookkeeping (manifest, journal, quarantine, temp files) is
        excluded: this is the paper's Table 5 storage metric, profile
        payload only.
        """
        total = 0
        for dirpath, dirs, files in os.walk(self.root):
            if os.path.basename(dirpath) == QUARANTINE_DIR:
                continue
            dirs[:] = [d for d in dirs if d != QUARANTINE_DIR]
            for name in files:
                if not name.endswith(".prof"):
                    continue
                total += os.path.getsize(os.path.join(dirpath, name))
        return total


def _parse_generation(fname):
    """'app@cycles.g12.prof' -> 12; ungenerated names -> 0."""
    stem = fname[:-len(".prof")] if fname.endswith(".prof") else fname
    _, _, tail = stem.rpartition(".g")
    return int(tail) if tail.isdigit() else 0


class ImageProfile:
    """In-memory samples for one image, by event type.

    This is what the analysis tools consume.  ``counts[event]`` maps an
    image-relative instruction offset to its aggregated sample count;
    ``periods[event]`` is the mean sampling period used, needed to turn
    sample counts into cycle counts (cycles ~= samples * period).
    """

    def __init__(self, image, counts=None, periods=None):
        self.image = image
        self.counts = counts or {}
        self.periods = periods or {}
        #: (from offset, to offset) -> edge samples (double sampling).
        self.edge_counts = {}
        # Distinct (event, offset) entries, maintained incrementally so
        # the daemon's resident-memory model stays O(#profiles) even
        # when sampled at every allocation (repro.obs).
        self._entries = sum(len(by_offset)
                            for by_offset in self.counts.values())

    def add_edge(self, from_offset, to_offset, count):
        key = (from_offset, to_offset)
        self.edge_counts[key] = self.edge_counts.get(key, 0) + count

    def edges_by_addr(self):
        """Return {(from addr, to addr): edge samples}."""
        base = self.image.base
        return {(base + f, base + t): count
                for (f, t), count in self.edge_counts.items()}

    def add(self, event, offset, count):
        by_offset = self.counts.setdefault(event, {})
        if offset in by_offset:
            by_offset[offset] += count
        else:
            by_offset[offset] = count
            self._entries += 1

    def entry_count(self):
        """Distinct (event, offset) entries this profile holds."""
        return self._entries

    def total(self, event):
        return sum(self.counts.get(event, {}).values())

    def samples_by_addr(self, event):
        """Return {absolute address: samples} for *event*."""
        base = self.image.base
        return {base + off: cnt
                for off, cnt in self.counts.get(event, {}).items()}

    def samples_for(self, proc, event):
        """Return {absolute address: samples} inside procedure *proc*."""
        base = self.image.base
        result = {}
        for off, cnt in self.counts.get(event, {}).items():
            addr = base + off
            if proc.start <= addr < proc.end:
                result[addr] = cnt
        return result

    def procedure_totals(self, event):
        """Return {procedure name: samples} for *event*."""
        totals = {}
        by_offset = self.counts.get(event, {})
        for proc in self.image.procedures:
            total = 0
            for off, cnt in by_offset.items():
                if proc.start <= self.image.base + off < proc.end:
                    total += cnt
            totals[proc.name] = total
        return totals
