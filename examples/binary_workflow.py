"""Working with binary executables: the full unmodified-binary story.

DCPI's pitch is that it profiles *unmodified executables*.  This
example walks the whole binary lifecycle:

1. assemble a program and write it out as an AEXE binary executable;
2. load the binary back (no assembler involved) and profile it,
   unmodified, under the collection system;
3. estimate basic-block execution counts from the samples (dcpix);
4. cross-check against the pixie baseline, which *rewrites* the binary
   with counting instrumentation and measures its overhead -- the
   paper's Table 1 contrast in one script.

Run with:  python examples/binary_workflow.py
"""

import os
import tempfile

from repro import MachineConfig, ProfileSession, SessionConfig
from repro.alpha.encoding import load_executable, save_executable
from repro.baselines import PixieProfiler
from repro.tools import dcpix
from repro.workloads import mccalpin

#: CI smoke runs set DCPI_EXAMPLE_BUDGET to cap simulated instructions;
#: unset (0) means run the workload to completion.
BUDGET = int(os.environ.get("DCPI_EXAMPLE_BUDGET", "0")) or None


def main():
    workload = mccalpin.build("assign", n=4096, iterations=2)

    # Build and store the binary (normally your compiler's job).
    from repro.cpu.machine import Machine

    scratch = Machine(MachineConfig(), seed=1)
    workload.setup(scratch)
    image = scratch.processes[0].images[0]
    path = os.path.join(tempfile.mkdtemp(prefix="dcpi-bin-"),
                        "mccalpin.aexe")
    save_executable(image, path)
    print("wrote %s (%d bytes, %d instructions)"
          % (path, os.path.getsize(path), len(image.instructions)))

    # Profile the unmodified binary.
    binary = load_executable(path)

    def run_binary(machine):
        machine.load_image(binary)
        machine.spawn(binary, name="mccalpin-bin")

    session = ProfileSession(
        MachineConfig(),
        SessionConfig(mode="default", cycles_period=(60, 64)))
    result = session.run(run_binary, max_instructions=BUDGET)
    profile = result.profile_for("mccalpin")
    print("\n=== dcpix: estimated block counts from samples ===")
    print(dcpix(binary, profile))

    # The instrumentation alternative: pixie rewrites the binary.
    print("\n=== pixie baseline: rewritten binary, exact counts ===")
    pixie = PixieProfiler(MachineConfig()).profile(
        mccalpin.build("assign", n=4096, iterations=2),
        max_instructions=BUDGET)
    exact = pixie.data["block_counts"]
    print("exact hot-block count: %d   overhead: %.1f%%"
          % (max(exact.values()), pixie.overhead * 100))
    from repro.tools.dcpix import pixie_counts

    estimated = pixie_counts(binary, profile)
    est_hot = max(count for _, count in estimated.values())
    print("sampled estimate:      %d   overhead: ~1%% "
          "(the paper's contrast)" % est_hot)


if __name__ == "__main__":
    main()
