"""Full-system profiling of an X server (the paper's Figure 1 story).

The x11perf-like workload spends its time across an application image,
three shared libraries and the kernel.  Because DCPI samples *all* code
via performance-counter interrupts -- not just one application -- the
profile attributes every cycle, including the kernel's.

This example:

1. profiles the whole system;
2. prints the Figure 1-style per-procedure listing (note the kernel's
   /vmunix rows);
3. drills into the hottest routine with dcpicalc;
4. shows the whole-image stall accounting.

Run with:  python examples/x11_server_analysis.py
"""

import os

from repro import MachineConfig, ProfileSession, SessionConfig
from repro.cpu.events import EventType
from repro.tools import dcpicalc, dcpiprof, dcpitopstalls
from repro.tools.dcpiprof import procedure_table
from repro.workloads import x11perf

#: CI smoke runs set DCPI_EXAMPLE_BUDGET to cap simulated instructions.
BUDGET = int(os.environ.get("DCPI_EXAMPLE_BUDGET", "0")) or 400_000


def main():
    session = ProfileSession(
        MachineConfig(),
        SessionConfig(mode="default", cycles_period=(200, 256),
                      event_period=64))
    result = session.run(x11perf.build(scale=8, rounds=30),
                         max_instructions=BUDGET)

    profiles = list(result.profiles.values())
    print("=== dcpiprof (full system, all images) ===")
    print(dcpiprof(profiles, limit=12))

    # Find the hottest procedure and the image that owns it.
    rows, total, _ = procedure_table(profiles)
    hottest = rows[0]
    print()
    print("hottest procedure: %s (%s), %.1f%% of all cycles"
          % (hottest["procedure"], hottest["image"],
             100.0 * hottest["primary"] / total))

    image = result.daemon.images[hottest["image"]]
    profile = result.profile_for(hottest["image"])
    print()
    print("=== dcpicalc for %s ===" % hottest["procedure"])
    print(dcpicalc(image, hottest["procedure"], profile))

    print()
    print("=== whole-image stall accounting ===")
    print(dcpitopstalls(image, profile))

    kernel_profile = result.profile_for("/vmunix")
    if kernel_profile is not None:
        print()
        print("kernel time: %d cycles samples in /vmunix"
              % kernel_profile.total(EventType.CYCLES))


if __name__ == "__main__":
    main()
