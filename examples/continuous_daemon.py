"""Continuous profiling with an on-disk database and offline tools.

Mirrors production use of the paper's system: the daemon runs for a
long period over a timeshared machine, periodically merging profiles
into the epoch-structured on-disk database; analysis happens later,
offline, from a saved session bundle -- possibly on another machine.

Run with:  python examples/continuous_daemon.py
"""

import os
import tempfile

from repro import MachineConfig, ProfileSession, SessionConfig
from repro.collect.bundle import load_bundle, save_bundle
from repro.cpu.events import EventType
from repro.tools import dcpiprof
from repro.workloads import timesharing

#: CI smoke runs set DCPI_EXAMPLE_BUDGET to cap simulated instructions.
BUDGET = int(os.environ.get("DCPI_EXAMPLE_BUDGET", "0")) or 300_000


def main():
    root = tempfile.mkdtemp(prefix="dcpi-example-")
    db_root = os.path.join(root, "db")
    bundle_dir = os.path.join(root, "bundle")

    workload = timesharing.build(processes=16, scale=12)
    session = ProfileSession(
        MachineConfig(num_cpus=workload.num_cpus),
        SessionConfig(mode="default", cycles_period=(200, 256),
                      event_period=64, db_root=db_root,
                      drain_interval=50_000))
    result = session.run(workload, max_instructions=BUDGET)

    stats = result.stats()
    print("=== session ===")
    print("profiled %d instructions over %d CPUs; %d daemon drains"
          % (result.instructions, len(result.machine.cores),
             result.daemon.drains))
    print("daemon resident: %.0f KB (peak %.0f KB)"
          % (stats["daemon_resident_bytes"] / 1024,
             stats["daemon_peak_resident_bytes"] / 1024))
    print("unknown samples: %.2f%% (paper: ~0.05%%)"
          % (stats["daemon_unknown_fraction"] * 100))
    print("profile database: %d bytes on disk at %s"
          % (result.database.disk_bytes(), db_root))

    # Persist everything the offline tools need, then analyze "later".
    save_bundle(result, bundle_dir)
    profiles, meta = load_bundle(bundle_dir)
    print()
    print("=== offline dcpiprof from the saved bundle ===")
    print(dcpiprof(profiles.values(), limit=10))

    total = sum(p.total(EventType.CYCLES) for p in profiles.values())
    print()
    print("%d cycles samples across %d images reloaded from disk"
          % (total, len(profiles)))


if __name__ == "__main__":
    main()
