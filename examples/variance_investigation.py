"""Investigating run-to-run variance (the paper's section 3.3 story).

The wave5 workload's running time varies between runs.  Following the
paper's methodology:

1. run the workload eight times and compare profiles with dcpistats --
   the variance concentrates in one procedure (smooth_);
2. analyze smooth_ in the fastest and slowest runs;
3. compare their stall summaries: the slow runs lose their extra cycles
   to D-cache/DTB/write-buffer stalls, implicating the per-run
   virtual-to-physical page mapping (cache conflicts), exactly the
   paper's conclusion.

Run with:  python examples/variance_investigation.py
"""

import os

from repro import MachineConfig, ProfileSession, SessionConfig
from repro.core import analyze_procedure
from repro.cpu.config import CacheConfig
from repro.cpu.events import EventType
from repro.tools import dcpistats
from repro.workloads import wave5

RUNS = 8

#: CI smoke runs set DCPI_EXAMPLE_BUDGET to cap simulated instructions.
BUDGET = int(os.environ.get("DCPI_EXAMPLE_BUDGET", "0")) or 400_000


def machine_config():
    config = MachineConfig()
    # A 512KB board cache puts smooth_'s working set right at the edge
    # where page-mapping conflicts decide hit rates.
    config.board = CacheConfig(512 * 1024, 64, 1, 20)
    return config


def main():
    results = []
    for seed in range(1, RUNS + 1):
        session = ProfileSession(
            machine_config(),
            SessionConfig(mode="default", cycles_period=(60, 64),
                          event_period=64, seed=seed))
        result = session.run(wave5.build(scale=20, rounds=10,
                                         smooth_pages=12),
                             max_instructions=BUDGET)
        results.append(result)
        print("run %d: %8d cycles" % (seed, result.cycles))

    print()
    print("=== dcpistats across %d runs ===" % RUNS)
    profile_sets = [list(r.profiles.values()) for r in results]
    print(dcpistats(profile_sets, limit=8))

    def smooth_samples(result):
        return result.profile_for("wave5").procedure_totals(
            EventType.CYCLES)["smooth_"]

    fastest = min(results, key=smooth_samples)
    slowest = max(results, key=smooth_samples)
    print()
    print("smooth_ samples: fastest run %d, slowest run %d"
          % (smooth_samples(fastest), smooth_samples(slowest)))

    for label, result in (("fastest", fastest), ("slowest", slowest)):
        image = result.daemon.images["wave5"]
        profile = result.profile_for("wave5")
        analysis = analyze_procedure(image, "smooth_", profile)
        summary = analysis.summary()
        print()
        print("=== smooth_ stall summary (%s run) ===" % label)
        print(summary.render())


if __name__ == "__main__":
    main()
