"""Profile-guided tuning of a parallel decision-support query.

The paper opens with an anecdote: DCPI pinpointed a problem in a
commercial database, cutting an SQL query from 180 to 14 hours.  This
example replays that workflow on the 8-CPU DSS workload:

1. profile the query and find the dominant stall (the table scan's
   memory behaviour);
2. apply a "fix" -- a scan with better spatial locality (stride 8
   instead of 32: four times the work per cache line);
3. re-profile and diff the two profiles with dcpidiff to confirm the
   bottleneck moved.

Run with:  python examples/query_tuning.py
"""

import os

from repro import MachineConfig, ProfileSession, SessionConfig
from repro.core import analyze_procedure
from repro.tools import dcpidiff, dcpiprof
from repro.workloads import dss

#: CI smoke runs set DCPI_EXAMPLE_BUDGET to cap simulated instructions.
BUDGET = int(os.environ.get("DCPI_EXAMPLE_BUDGET", "0")) or 300_000


def profile(workload):
    session = ProfileSession(
        MachineConfig(num_cpus=workload.num_cpus),
        SessionConfig(mode="default", cycles_period=(120, 128),
                      event_period=64))
    return session.run(workload, max_instructions=BUDGET)


class TunedDSS(dss.DSS):
    """The same query with a locality-friendly scan."""

    def setup(self, machine):
        from repro.alpha.assembler import assemble
        from repro.workloads.asmgen import caller_proc, loop_proc

        text = (".image dssquery\n.data lineitem, 524288\n"
                ".data hashtbl, 131072\n")
        # The fix: stride 8 visits every word of each cache line
        # instead of skipping across lines (stride 32).
        text += loop_proc("ScanLineitem", 30 * self.scale, "mem",
                          buf="lineitem", wrap=8192, stride=8)
        text += loop_proc("ProbeHashJoin", 10 * self.scale, "mem",
                          buf="hashtbl", wrap=4096, stride=8)
        text += loop_proc("Aggregate", 8 * self.scale, "int")
        text += caller_proc("run_query", ["ScanLineitem",
                                          "ProbeHashJoin", "Aggregate"],
                            rounds=5)
        image = machine.load_image(assemble(text, image_name="dssquery"))
        for index in range(self.workers):
            machine.spawn(image, entry="dssquery:run_query",
                          name="dss.%d" % index)


def main():
    print("=== before: profiling the query ===")
    before = profile(dss.build(workers=8, scale=8))
    print(dcpiprof(before.profiles.values(), limit=6))

    image = before.daemon.images["dssquery"]
    profile_data = before.profile_for("dssquery")
    analysis = analyze_procedure(image, "ScanLineitem", profile_data)
    print()
    print("ScanLineitem: actual CPI %.2f vs best-case %.2f"
          % (analysis.actual_cpi, analysis.best_case_cpi))
    summary = analysis.summary()
    print("D-cache stall share: up to %.1f%%"
          % (summary.dynamic["dcache"][1] * 100))

    print()
    print("=== after: scan rewritten for spatial locality ===")
    after = profile(TunedDSS(workers=8, scale=8))
    print("cycles before: %d   after: %d   (%.1fx)"
          % (before.cycles, after.cycles,
             before.cycles / after.cycles))

    print()
    print("=== dcpidiff (share of total cycles per procedure) ===")
    print(dcpidiff(before.profiles.values(), after.profiles.values(),
                   limit=6))


if __name__ == "__main__":
    main()
