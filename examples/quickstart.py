"""Quickstart: profile a program and explain where its cycles went.

Runs the paper's McCalpin copy loop under the continuous-profiling
infrastructure, then walks the full analysis chain:

1. dcpiprof  -- which procedures are hot;
2. dcpicalc  -- per-instruction CPI and stall culprits;
3. the Figure 4-style stall summary.

Run with:  python examples/quickstart.py
"""

import os

from repro import MachineConfig, ProfileSession, SessionConfig
from repro.core import analyze_procedure
from repro.tools import dcpicalc, dcpiprof
from repro.workloads import mccalpin

#: CI smoke runs set DCPI_EXAMPLE_BUDGET to cap simulated instructions;
#: unset (0) means run the workload to completion.
BUDGET = int(os.environ.get("DCPI_EXAMPLE_BUDGET", "0")) or None


def main():
    # The workload: c[i] = a[i] over arrays far larger than the caches,
    # unrolled 4x -- the exact loop of the paper's Figure 2.
    workload = mccalpin.build("assign", n=16384, iterations=2)

    # A profiling session: CYCLES + IMISS counters with randomized
    # periods (scaled down from the paper's 60-64K cycles so a pure-
    # Python simulation still gathers thousands of samples).
    session = ProfileSession(
        MachineConfig(),
        SessionConfig(mode="default", cycles_period=(120, 128),
                      event_period=64))
    result = session.run(workload, max_instructions=BUDGET)

    stats = result.stats()
    print("=== collection ===")
    print("instructions: %(instructions)d   cycles: %(cycles)d" % stats)
    print("samples: %d   hash miss rate: %.1f%%   handler avg: %.0f cyc"
          % (stats["driver_samples"], stats["driver_miss_rate"] * 100,
             stats["driver_avg_cost"]))

    print()
    print("=== dcpiprof: samples per procedure ===")
    print(dcpiprof(result.profiles.values()))

    image = result.daemon.images["mccalpin"]
    profile = result.profile_for("mccalpin")
    analysis = analyze_procedure(image, "assign", profile)

    print()
    print("=== dcpicalc: instruction-level analysis ===")
    print(dcpicalc(image, "assign", profile, analysis=analysis))

    print()
    print("=== stall summary ===")
    print(analysis.summary().render())


if __name__ == "__main__":
    main()
